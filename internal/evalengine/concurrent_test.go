package evalengine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sfp"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// fig4aProblem is the two-node Fig. 4a deployment used across the
// concurrency tests.
func fig4aProblem() (redundancy.Problem, []int) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture(collect(pl, []int{0, 1}))
	return redundancy.Problem{
		App:  app,
		Arch: ar,
		Goal: sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Bus:  ttp.NewBus(len(ar.Nodes), pl.Bus.SlotLen),
	}, []int{0, 0, 1, 1}
}

// TestConcurrentMatchesFresh hammers one engine from all workers at once
// — every (mapping, levels) pair of the Fig. 4a neighborhood, twice so
// cache hits and misses both occur under contention — and then verifies
// every result bit-identical to the free-function pipeline. Run under
// -race this is also the data-race test for the shared caches.
func TestConcurrentMatchesFresh(t *testing.T) {
	p, seed := fig4aProblem()
	const workers = 4
	ce := NewConcurrent(p, workers)
	if got := ce.NumWorkers(); got != workers {
		t.Fatalf("NumWorkers() = %d, want %d", got, workers)
	}

	// The work list: every one-process move away from the seed mapping ×
	// every hardening vector.
	mappings := [][]int{seed}
	for pid := range seed {
		for j := 0; j < len(p.Arch.Nodes); j++ {
			if j == seed[pid] {
				continue
			}
			m := append([]int(nil), seed...)
			m[pid] = j
			mappings = append(mappings, m)
		}
	}
	levels := levelVectors(p.Arch)
	type task struct{ m, l int }
	var tasks []task
	for round := 0; round < 2; round++ {
		for mi := range mappings {
			for li := range levels {
				tasks = append(tasks, task{mi, li})
			}
		}
	}

	results := make([]*redundancy.Solution, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := ce.Worker(w)
			for i := w; i < len(tasks); i += workers {
				results[i], errs[i] = ev.Evaluate(mappings[tasks[i].m], levels[tasks[i].l])
			}
		}(w)
	}
	wg.Wait()

	for i, tk := range tasks {
		if errs[i] != nil {
			t.Fatalf("task %d: %v", i, errs[i])
		}
		fresh := p
		fresh.Mapping = mappings[tk.m]
		want, err := redundancy.Evaluate(fresh, levels[tk.l])
		if err != nil {
			t.Fatalf("fresh task %d: %v", i, err)
		}
		assertSameSolution(t, fmt.Sprintf("task %d (mapping %v levels %v)", i, mappings[tk.m], levels[tk.l]), results[i], want)
	}

	// RedundancyOpt across workers: every worker optimizes a different
	// mapping concurrently, all must match the fresh path.
	opts := make([]*redundancy.Solution, workers)
	optErrs := make([]error, workers)
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts[w], optErrs[w] = ce.Worker(w).RedundancyOpt(mappings[w])
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if optErrs[w] != nil {
			t.Fatalf("opt %d: %v", w, optErrs[w])
		}
		fresh := p
		fresh.Mapping = mappings[w]
		want, err := redundancy.RedundancyOpt(fresh)
		if err != nil {
			t.Fatal(err)
		}
		assertSameSolution(t, fmt.Sprintf("opt %d", w), opts[w], want)
	}

	st := ce.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Errorf("expected both hits and misses under contention: %v", st)
	}
	if st.Evaluations != st.CacheHits+st.CacheMisses {
		t.Errorf("hits+misses != evaluations: %v", st)
	}
}

// TestConcurrentSetProblem: the Concurrent engine preserves the
// Evaluator's invalidation semantics — identical rebinds keep the caches
// warm, a node swap drops solutions but keeps SFP analyses.
func TestConcurrentSetProblem(t *testing.T) {
	p, m := fig4aProblem()
	ce := NewConcurrent(p, 3)
	if _, err := ce.Worker(0).RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	base := ce.Stats()

	ce.SetProblem(p)
	if _, err := ce.Worker(1).RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	st := ce.Stats()
	if st.Invalidations != base.Invalidations {
		t.Errorf("identical rebind invalidated: %v", st)
	}
	if st.OptHits != base.OptHits+1 {
		t.Errorf("identical rebind missed the warm cache from another worker: %v", st)
	}

	pl := paper.Fig1Platform()
	ce.SetProblem(redundancy.Problem{
		App: p.App, Arch: platform.NewArchitecture(collect(pl, []int{1, 0})),
		Goal: p.Goal, Bus: ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if _, err := ce.Worker(2).RedundancyOpt([]int{1, 1, 0, 0}); err != nil {
		t.Fatal(err)
	}
	st = ce.Stats()
	if st.Invalidations != base.Invalidations+1 {
		t.Errorf("node swap did not invalidate solutions: %v", st)
	}
	if st.SFPHits == base.SFPHits {
		t.Errorf("node swap rebuilt SFP analyses that were cached: %v", st)
	}
}

// opaqueBus implements sched.Bus but not sched.CloneableBus.
type opaqueBus struct{ inner *ttp.Bus }

func (b opaqueBus) Schedule(srcNode int, ready float64) (float64, float64) {
	return b.inner.Schedule(srcNode, ready)
}
func (b opaqueBus) Reset() { b.inner.Reset() }

// TestConcurrentBusClamp: a bus whose booking state cannot be cloned
// limits the engine to one usable worker instead of racing on it.
func TestConcurrentBusClamp(t *testing.T) {
	p, m := fig4aProblem()
	p.Bus = opaqueBus{inner: ttp.NewBus(2, paper.Fig1Platform().Bus.SlotLen)}
	ce := NewConcurrent(p, 4)
	if got := ce.NumWorkers(); got != 1 {
		t.Fatalf("NumWorkers() = %d with non-cloneable bus, want 1", got)
	}
	if _, err := ce.Worker(0).RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	// Cloneable and nil buses keep the full worker count.
	p2, _ := fig4aProblem()
	if got := NewConcurrent(p2, 4).NumWorkers(); got != 4 {
		t.Errorf("NumWorkers() = %d with *ttp.Bus, want 4", got)
	}
	p2.Bus = nil
	if got := NewConcurrent(p2, 4).NumWorkers(); got != 4 {
		t.Errorf("NumWorkers() = %d with nil bus, want 4", got)
	}
	p2.Bus = ttp.InstantBus{}
	if got := NewConcurrent(p2, 4).NumWorkers(); got != 4 {
		t.Errorf("NumWorkers() = %d with InstantBus, want 4", got)
	}
}

// TestSharedSFPCache: engines created with NewConcurrentWith over one
// SFPCache reuse each other's per-node analyses — the cross-candidate
// sharing core.Run's parallel path relies on.
func TestSharedSFPCache(t *testing.T) {
	p, m := fig4aProblem()
	sfpc := NewSFPCache()
	a := NewConcurrentWith(p, 2, sfpc)
	if _, err := a.Worker(0).RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	if a.Stats().SFPBuilds == 0 {
		t.Fatalf("first engine built no SFP analyses: %v", a.Stats())
	}

	b := NewConcurrentWith(p, 2, sfpc)
	if _, err := b.Worker(0).RedundancyOpt(m); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.SFPBuilds != 0 {
		t.Errorf("second engine rebuilt %d SFP analyses despite the shared cache", st.SFPBuilds)
	}
	if st.SFPHits == 0 {
		t.Errorf("second engine recorded no SFP hits: %v", st)
	}
}

// TestConcurrentSingleWorker: a 1-worker engine is exactly the sequential
// Evaluator (workers < 1 clamps to 1).
func TestConcurrentSingleWorker(t *testing.T) {
	p, m := fig4aProblem()
	ce := NewConcurrent(p, 0)
	if got := ce.NumWorkers(); got != 1 {
		t.Fatalf("NumWorkers() = %d, want 1", got)
	}
	got, err := ce.Worker(0).RedundancyOpt(m)
	if err != nil {
		t.Fatal(err)
	}
	fresh := p
	fresh.Mapping = m
	want, err := redundancy.RedundancyOpt(fresh)
	if err != nil {
		t.Fatal(err)
	}
	assertSameSolution(t, "single worker", got, want)
}

// TestSharedCacheSynthetic: workers over synthetic apps, checking that a
// solution computed by one worker is served to another bit-identically.
func TestSharedCacheSynthetic(t *testing.T) {
	inst, err := taskgen.Generate(taskgen.DefaultConfig(42, 12, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	p := redundancy.Problem{
		App:  inst.App,
		Arch: platform.NewArchitecture(collect(inst.Platform, []int{0, 1})),
		Goal: inst.Goal,
		Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
	}
	m := make([]int, 12)
	for i := range m {
		m[i] = i % 2
	}
	ce := NewConcurrent(p, 2)
	first, err := ce.Worker(0).RedundancyOpt(m)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ce.Worker(1).RedundancyOpt(m)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second worker did not get the cached solution pointer")
	}
	if ce.Stats().OptHits != 1 {
		t.Errorf("opt hits = %d, want 1: %v", ce.Stats().OptHits, ce.Stats())
	}
}
