package evalengine

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/sfp"
)

// TestSolCachePutEvictsOneVictim pins the regression for the whole-shard
// reset: overflowing a shard must displace exactly one resident entry per
// insert (reported through the return value), never wipe the shard.
func TestSolCachePutEvictsOneVictim(t *testing.T) {
	c := newSolCache(nShards * 4) // shardCap = 4
	sol := &redundancy.Solution{}

	// Fill one shard to its cap. Keys are grouped by shard index.
	byShard := make(map[int][]string)
	for i := 0; len(byShard[0]) < 6; i++ {
		k := fmt.Sprintf("key-%d", i)
		byShard[shardOf(k)] = append(byShard[shardOf(k)], k)
	}
	keys := byShard[0]
	var evicted int64
	for _, k := range keys[:4] {
		evicted += c.put(k, sol)
	}
	if evicted != 0 {
		t.Fatalf("evictions while filling to cap: %d", evicted)
	}
	// Re-putting a resident key at cap must not evict anything.
	if ev := c.put(keys[0], sol); ev != 0 {
		t.Fatalf("re-put of resident key evicted %d entries", ev)
	}
	// One past cap: exactly one victim, incoming entry kept, population
	// stays at cap instead of collapsing to one.
	if ev := c.put(keys[4], sol); ev != 1 {
		t.Fatalf("overflow put evicted %d entries, want 1", ev)
	}
	if _, ok := c.get(keys[4]); !ok {
		t.Fatal("incoming entry was not kept on overflow")
	}
	if n := c.size(); n != 4 {
		t.Fatalf("shard population after overflow = %d, want 4 (whole-shard drop regressed)", n)
	}
}

// TestSFPCachePutEvictsOneVictim is the same regression for the SFP cache,
// whose entries are nested under node pointers.
func TestSFPCachePutEvictsOneVictim(t *testing.T) {
	c := NewSFPCache()
	nodeA := &platform.Node{}
	nodeB := &platform.Node{}
	nd := &sfp.Node{}

	cap := maxSFPEntries / nShards
	shard := func(k string) int { return shardOf(k) }
	// Generate enough shard-0 keys to overflow.
	var keys []string
	for i := 0; len(keys) < cap+2; i++ {
		k := fmt.Sprintf("sfp-%d", i)
		if shard(k) == 0 {
			keys = append(keys, k)
		}
	}
	var evicted int64
	for i, k := range keys[:cap] {
		n := nodeA
		if i%2 == 1 {
			n = nodeB
		}
		evicted += c.put(n, k, nd)
	}
	if evicted != 0 {
		t.Fatalf("evictions while filling to cap: %d", evicted)
	}
	if ev := c.put(nodeA, keys[0], nd); ev != 0 {
		t.Fatalf("re-put of resident key evicted %d entries", ev)
	}
	if ev := c.put(nodeA, keys[cap], nd); ev != 1 {
		t.Fatalf("overflow put evicted %d entries, want 1", ev)
	}
	if _, ok := c.get(nodeA, []byte(keys[cap])); !ok {
		t.Fatal("incoming entry was not kept on overflow")
	}
	if n := c.shards[0].count; n != cap {
		t.Fatalf("shard population after overflow = %d, want %d", n, cap)
	}
}

// countLiveGauges returns how many evalengine.live.* gauges a registry
// snapshot exposes.
func countLiveGauges(r *obs.Registry) int {
	n := 0
	for name := range r.Snapshot().Gauges {
		if strings.HasPrefix(name, "evalengine.live.") {
			n++
		}
	}
	return n
}

// TestSetMetricsIdempotent pins the gauge-leak regression: installing the
// same registry twice (as jobs.Runner does per job) must leave exactly one
// gauge set, and moving to another registry — or nil — must deregister the
// closures from the previous one.
func TestSetMetricsIdempotent(t *testing.T) {
	st := newStore(NewSFPCache(), 1)
	a := obs.NewRegistry()

	st.setMetrics(a)
	st.setMetrics(a)
	if n := countLiveGauges(a); n != len(liveGaugeNames) {
		t.Fatalf("after double install: %d live gauges, want %d", n, len(liveGaugeNames))
	}

	b := obs.NewRegistry()
	st.setMetrics(b)
	if n := countLiveGauges(a); n != 0 {
		t.Fatalf("old registry still holds %d live gauges after move", n)
	}
	if n := countLiveGauges(b); n != len(liveGaugeNames) {
		t.Fatalf("new registry holds %d live gauges, want %d", n, len(liveGaugeNames))
	}

	st.setMetrics(nil)
	if n := countLiveGauges(b); n != 0 {
		t.Fatalf("registry still holds %d live gauges after SetMetrics(nil)", n)
	}
}
