package evalengine

import (
	"repro/internal/appmodel"
	"repro/internal/evalcache"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/runstate"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

// persistFormat versions the persistent cache key layout. It is folded
// into the problem fingerprint, so bumping it orphans entries written
// under an incompatible key scheme instead of misreading them.
const persistFormat = 1

// busFingerprint reduces a bus to the parameters that determine its
// message timing. The in-memory caches compare buses by pointer (a fresh
// bus is a fresh problem), but across processes only behavior matters: a
// TDMA bus is its slot geometry, the instantaneous and absent buses carry
// no state at all. Unknown bus implementations return ok=false, which
// disables persistence for the problem rather than guessing at key
// equivalence.
func busFingerprint(b sched.Bus) (kind string, slot, round float64, ok bool) {
	switch bus := b.(type) {
	case nil:
		return "none", 0, 0, true
	case *ttp.Bus:
		return "ttp", bus.SlotLen(), bus.RoundLen(), true
	case ttp.InstantBus:
		return "instant", 0, 0, true
	default:
		return "", 0, 0, false
	}
}

// problemFingerprint derives the content address the problem's memoized
// solutions are persisted under: every input of the evaluation pipeline
// other than the per-call (levels, mapping) key. Two processes that
// construct equal problems — same application content, node types with
// their h-versions, reliability goal, bus behavior, slack model,
// re-execution cap and fixed levels — share one cache file. ok=false
// means the problem cannot be fingerprinted (unknown bus type, missing
// pieces) and must not be persisted.
func problemFingerprint(p redundancy.Problem) (string, bool) {
	if p.App == nil || p.Arch == nil {
		return "", false
	}
	kind, slot, round, ok := busFingerprint(p.Bus)
	if !ok {
		return "", false
	}
	v := struct {
		Format      int
		App         *appmodel.Application
		Nodes       []*platform.Node
		Goal        sfp.Goal
		BusKind     string
		BusSlot     float64
		BusRound    float64
		MaxK        int
		Model       int
		FixedLevels []int
	}{persistFormat, p.App, p.Arch.Nodes, p.Goal, kind, slot, round, p.MaxK, int(p.Model), p.FixedLevels}
	fp, err := runstate.Fingerprint(v)
	if err != nil {
		return "", false
	}
	return fp, true
}

// snapshotMap copies the cache's entries into a plain map for
// serialization.
func (c *solCache) snapshotMap() map[string]*redundancy.Solution {
	out := make(map[string]*redundancy.Solution, c.size())
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for k, v := range sh.m {
			out[k] = v
		}
		sh.mu.RUnlock()
	}
	return out
}

// seed inserts previously persisted entries, honoring the shard caps
// (overflow beyond the cap is silently not seeded — the disk file may
// accumulate more history than the in-memory backstop admits).
func (c *solCache) seed(m map[string]*redundancy.Solution) {
	for k, v := range m {
		c.put(k, v)
	}
}

// setPersistent installs (or removes, with nil) the disk cache, flushing
// whatever the previous one was owed and seeding the in-memory caches
// from the new one's entry for fp.
func (st *store) setPersistent(c *evalcache.Cache, fp string) {
	st.flushPersistent()
	st.persist = c
	st.loadPersistent(fp)
}

// loadPersistent points the store at fingerprint fp and seeds the
// solution caches from its on-disk entry, if any. A corrupt or absent
// entry is simply a cold start.
func (st *store) loadPersistent(fp string) {
	st.persistFP = fp
	st.persistSeeded = 0
	if st.persist == nil || fp == "" {
		return
	}
	e, ok := st.persist.Load(fp)
	if !ok {
		return
	}
	st.sols.seed(e.Sols)
	st.opts.seed(e.Opts)
	st.persistSeeded = len(e.Sols) + len(e.Opts)
}

// flushPersistent writes the current solution caches to disk under the
// store's fingerprint. It is a no-op without a disk cache, without a
// fingerprint, or when no entries were added since the load — so calling
// it defensively (problem changes, run teardown) costs nothing on warm
// runs that computed nothing new.
func (st *store) flushPersistent() error {
	if st.persist == nil || st.persistFP == "" {
		return nil
	}
	sols := st.sols.snapshotMap()
	opts := st.opts.snapshotMap()
	total := len(sols) + len(opts)
	if total <= st.persistSeeded {
		return nil
	}
	if err := st.persist.Save(st.persistFP, &evalcache.Entry{Sols: sols, Opts: opts}); err != nil {
		return err
	}
	st.persistSeeded = total
	return nil
}

// SetPersistent installs (or removes, with nil) the disk-backed cache the
// evaluator's solution caches are loaded from and flushed to. Installing
// it immediately seeds the in-memory caches with whatever a previous
// process persisted for the current problem; from then on SetProblem
// flushes the outgoing problem's entries and loads the incoming one's.
// Call FlushPersistent (or SetProblem away) to persist the final
// problem's work.
//
// Like the caches themselves, persistence is invisible to results: disk
// entries are deterministic values of the fingerprinted problem, and a
// missing, stale or damaged file only costs recomputation.
func (e *Evaluator) SetPersistent(c *evalcache.Cache) {
	fp := ""
	if c != nil {
		fp, _ = problemFingerprint(e.prob)
	}
	e.st.setPersistent(c, fp)
}

// FlushPersistent writes entries computed since the last load to the disk
// cache. No-op without SetPersistent.
func (e *Evaluator) FlushPersistent() error { return e.st.flushPersistent() }

// SetPersistent installs the disk-backed cache on the engine's shared
// store; see Evaluator.SetPersistent. It must not be called while workers
// are in use.
func (c *Concurrent) SetPersistent(cache *evalcache.Cache) {
	c.workers[0].SetPersistent(cache)
}

// FlushPersistent writes entries computed since the last load to the disk
// cache. It must not be called while workers are in use.
func (c *Concurrent) FlushPersistent() error { return c.st.flushPersistent() }
