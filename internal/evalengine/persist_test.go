package evalengine

import (
	"testing"

	"repro/internal/evalcache"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

func persistProblem(t *testing.T, seed int64) (redundancy.Problem, []int) {
	t.Helper()
	inst, err := taskgen.Generate(taskgen.DefaultConfig(seed, 10, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	ar := platform.NewEnumerator(inst.Platform).Arch(2, 0)
	if ar == nil {
		t.Fatal("no 2-node architecture")
	}
	m := make([]int, inst.App.NumProcesses())
	for pid := range m {
		m[pid] = pid % 2
	}
	return redundancy.Problem{
		App:  inst.App,
		Arch: ar,
		Goal: inst.Goal,
		Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
	}, m
}

// TestPersistentWarmStart is the cross-process warm-start contract: a
// fresh engine pointed at a cache directory a previous engine flushed
// into answers the same requests without rebuilding a single schedule,
// and with bit-identical solutions.
func TestPersistentWarmStart(t *testing.T) {
	p, m := persistProblem(t, 11)
	dir := t.TempDir()
	cache, err := evalcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	cold := New(p)
	cold.SetPersistent(cache)
	want, err := cold.RedundancyOpt(m)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := cold.Stats()
	if coldStats.ScheduleBuilds == 0 {
		t.Fatal("cold run built no schedules")
	}
	if err := cold.FlushPersistent(); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Saves != 1 {
		t.Fatalf("flush saved %d files, want 1", cache.Stats().Saves)
	}
	// A second flush with nothing new learned must not rewrite the file.
	if err := cold.FlushPersistent(); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Saves != 1 {
		t.Fatal("no-op flush rewrote the cache file")
	}

	// New process: same problem content, fresh bus pointer, same cache dir.
	p2, _ := persistProblem(t, 11)
	warm := New(p2)
	warm.SetPersistent(cache)
	got, err := warm.RedundancyOpt(m)
	if err != nil {
		t.Fatal(err)
	}
	ws := warm.Stats()
	if ws.ScheduleBuilds != 0 || ws.SFPBuilds != 0 {
		t.Fatalf("warm run rebuilt: %d schedules, %d SFP analyses", ws.ScheduleBuilds, ws.SFPBuilds)
	}
	if got.Cost != want.Cost || got.Reliable != want.Reliable || got.Schedulable != want.Schedulable ||
		got.Schedule.Length != want.Schedule.Length {
		t.Fatalf("warm solution diverges: got %+v want %+v", got, want)
	}
}

// TestPersistentSetProblemFlushes pins the rebind lifecycle: moving to
// another problem flushes the outgoing one's entries, and moving back
// seeds them from disk again. The Concurrent engine shares the code path.
func TestPersistentSetProblemFlushes(t *testing.T) {
	pA, mA := persistProblem(t, 11)
	pB, mB := persistProblem(t, 12)
	cache, err := evalcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ce := NewConcurrent(pA, 2)
	ce.SetPersistent(cache)
	w := ce.Worker(0)
	if _, err := w.RedundancyOpt(mA); err != nil {
		t.Fatal(err)
	}
	ce.SetProblem(pB) // flushes A's entries
	if cache.Stats().Saves == 0 {
		t.Fatal("SetProblem did not flush the outgoing problem")
	}
	if _, err := w.RedundancyOpt(mB); err != nil {
		t.Fatal(err)
	}
	ce.SetProblem(pA) // flushes B, loads A
	ce.ResetStats()
	if _, err := w.RedundancyOpt(mA); err != nil {
		t.Fatal(err)
	}
	if s := ce.Stats(); s.ScheduleBuilds != 0 {
		t.Fatalf("returning to a flushed problem rebuilt %d schedules", s.ScheduleBuilds)
	}
}
