package evalcache

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/redundancy"
	"repro/internal/sched"
)

func testEntry() *Entry {
	return &Entry{
		Sols: map[string]*redundancy.Solution{
			"\x00\x01binary\xffkey": {
				Levels: []int{1, 2},
				Ks:     []int{0, 1},
				Schedule: &sched.Schedule{
					Start:    []float64{0, 10},
					Finish:   []float64{10, 20},
					MsgStart: []float64{math.NaN(), 5},
					MsgEnd:   []float64{math.NaN(), 7},
					Length:   20,
				},
				Cost:        42.5,
				Reliable:    true,
				Schedulable: true,
			},
		},
		Opts: map[string]*redundancy.Solution{
			"opt-key": {Levels: []int{2}, Ks: []int{1}, Cost: 7},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "00deadbeef00cafe"
	if _, ok := c.Load(fp); ok {
		t.Fatal("load of absent fingerprint succeeded")
	}
	if err := c.Save(fp, testEntry()); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(fp)
	if !ok {
		t.Fatal("load after save missed")
	}
	sol := got.Sols["\x00\x01binary\xffkey"]
	if sol == nil || sol.Cost != 42.5 || !math.IsNaN(sol.Schedule.MsgStart[0]) || sol.Schedule.MsgEnd[1] != 7 {
		t.Fatalf("round-trip mangled the solution: %+v", sol)
	}
	if got.Opts["opt-key"] == nil || got.Opts["opt-key"].Cost != 7 {
		t.Fatal("round-trip mangled the opt entry")
	}
	st := c.Stats()
	if st.Loads != 2 || st.LoadHits != 1 || st.Saves != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSaveMerges(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const fp = "ab12"
	if err := c.Save(fp, &Entry{Sols: map[string]*redundancy.Solution{"a": {Cost: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(fp, &Entry{Sols: map[string]*redundancy.Solution{"b": {Cost: 2}}}); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Load(fp)
	if !ok {
		t.Fatal("load missed after merge")
	}
	if len(got.Sols) != 2 || got.Sols["a"].Cost != 1 || got.Sols["b"].Cost != 2 {
		t.Fatalf("merge lost entries: %v", got.Sols)
	}
}

func TestInvalidFingerprintRejected(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, fp := range []string{"", "../escape", "UPPER", "with space", "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0"} {
		if _, ok := c.Load(fp); ok {
			t.Fatalf("load accepted invalid fingerprint %q", fp)
		}
		if err := c.Save(fp, testEntry()); err == nil {
			t.Fatalf("save accepted invalid fingerprint %q", fp)
		}
	}
}

// TestChaosCorruptFilesIgnored is the torn-cache chaos test: every way a
// cache file can be damaged — truncated at any length, bit-flipped
// anywhere, replaced with garbage — must read as a cold start, never as
// data and never as a panic. Save over the wreckage must work.
func TestChaosCorruptFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const fp = "feedface01234567"
	if err := c.Save(fp, testEntry()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, fp+".evc")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))

	corrupt := func(name string, raw []byte) {
		t.Helper()
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Load(fp); ok {
			t.Fatalf("%s: corrupt file was trusted", name)
		}
	}

	// Torn writes: every prefix length, sampled.
	for _, n := range []int{0, 1, 4, len(magic), len(magic) + 16, len(good) / 2, len(good) - 1} {
		corrupt("truncated", append([]byte(nil), good[:n]...))
	}
	// Bit flips across all regions: magic, digest, payload.
	for i := 0; i < 64; i++ {
		raw := append([]byte(nil), good...)
		pos := rng.Intn(len(raw))
		raw[pos] ^= 1 << uint(rng.Intn(8))
		corrupt("bit-flipped", raw)
	}
	// Garbage of assorted shapes.
	big := make([]byte, len(good)+100)
	rng.Read(big)
	corrupt("garbage", big)
	corrupt("empty", nil)
	// A valid header over a corrupt payload.
	hdr := append([]byte(nil), good[:len(magic)+32]...)
	corrupt("header-only", hdr)

	// Save over the wreckage restores service (the corrupt resident file
	// is discarded, not merged).
	if err := c.Save(fp, testEntry()); err != nil {
		t.Fatalf("save over corrupt file: %v", err)
	}
	if _, ok := c.Load(fp); !ok {
		t.Fatal("load after repairing save missed")
	}
}
