// Package evalcache is the disk-backed, content-addressed evaluation
// cache behind warm starts: it persists the evaluation engine's memoized
// solutions across processes, keyed by a fingerprint of the problem they
// were computed for.
//
// The cache is a directory of independent files, one per problem
// fingerprint. Each file carries a magic header and a SHA-256 digest of
// its payload; Load verifies both and treats any mismatch — torn write,
// truncation, bit rot, format drift — as a miss, never as data. Writes go
// through a temp file and an atomic rename, so concurrent writers and
// crashes can at worst lose an update, not corrupt one. The payload is
// gob (not JSON) because schedules carry NaN markers for intra-node
// messages, which JSON cannot encode.
//
// Correctness never depends on the cache: it stores results that are
// deterministic functions of the fingerprinted problem, so a stale,
// missing, or discarded file only costs recomputation.
package evalcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/fsatomic"
	"repro/internal/redundancy"
)

// magic identifies an evalcache file and its format version. Bump it to
// orphan (not misread) files written by an incompatible layout.
var magic = []byte("FTESEVC1")

// Entry is the persisted cache content for one problem fingerprint: the
// evaluation engine's two memoization layers, keyed exactly as in memory
// ((levels, mapping) → solution and mapping → optimized solution).
type Entry struct {
	Sols map[string]*redundancy.Solution
	Opts map[string]*redundancy.Solution
}

// Stats are a cache's lifetime I/O counters.
type Stats struct {
	// Loads and LoadHits count Load calls and how many returned an entry;
	// the difference covers both absent and rejected (corrupt) files.
	Loads    int64
	LoadHits int64
	// Saves counts successful Save calls; SavedEntries is the total number
	// of solutions written across them.
	Saves        int64
	SavedEntries int64
}

// Cache is a handle on one cache directory. It is safe for concurrent use
// and for concurrent use by multiple processes on the same directory.
type Cache struct {
	dir string

	loads    atomic.Int64
	loadHits atomic.Int64
	saves    atomic.Int64
	savedEnt atomic.Int64
}

// Open returns a cache rooted at dir, creating the directory if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("evalcache: open %s: %w", dir, err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// path maps a fingerprint to its file. Fingerprints are lowercase hex
// (runstate.Fingerprint), so they are filename-safe as-is; anything else
// is rejected by validFP before reaching the filesystem.
func (c *Cache) path(fp string) string {
	return filepath.Join(c.dir, fp+".evc")
}

// validFP accepts only the hex fingerprints runstate produces, keeping
// path construction trivially traversal-free.
func validFP(fp string) bool {
	if len(fp) == 0 || len(fp) > 64 {
		return false
	}
	for i := 0; i < len(fp); i++ {
		b := fp[i]
		if (b < '0' || b > '9') && (b < 'a' || b > 'f') {
			return false
		}
	}
	return true
}

// Load reads the entry stored for fp. The bool result is false when there
// is no usable entry — absent file, wrong magic, digest mismatch, or a
// payload gob refuses — so a damaged cache degrades to a cold start.
func (c *Cache) Load(fp string) (*Entry, bool) {
	if c == nil || !validFP(fp) {
		return nil, false
	}
	c.loads.Add(1)
	raw, err := os.ReadFile(c.path(fp))
	if err != nil {
		return nil, false
	}
	e, ok := decode(raw)
	if !ok {
		return nil, false
	}
	c.loadHits.Add(1)
	return e, true
}

// Save persists the entry for fp, merging it with whatever the file
// already holds so cooperating processes accumulate rather than clobber
// each other's work (both sides hold deterministic values for their keys,
// so merge order is immaterial). The write is temp-file + rename: readers
// and concurrent savers only ever see complete files.
func (c *Cache) Save(fp string, e *Entry) error {
	if c == nil {
		return nil
	}
	if !validFP(fp) {
		return fmt.Errorf("evalcache: invalid fingerprint %q", fp)
	}
	if e == nil || len(e.Sols)+len(e.Opts) == 0 {
		return nil
	}
	merged := e
	if raw, err := os.ReadFile(c.path(fp)); err == nil {
		if prev, ok := decode(raw); ok {
			for k, v := range e.Sols {
				prev.Sols[k] = v
			}
			for k, v := range e.Opts {
				prev.Opts[k] = v
			}
			merged = prev
		}
	}
	buf, err := encode(merged)
	if err != nil {
		return err
	}
	// Shared atomic-install idiom: temp + fsync + rename + parent-dir
	// fsync, with the evalcache.save failpoint for the fault tests. A
	// torn install is not a correctness risk — decode's digest check
	// turns it into a cold start — but a short-lived cache defeats the
	// warm-up economics, so the install is made durable like a journal.
	if err := fsatomic.WriteFileFP(c.path(fp), buf, "evalcache.save"); err != nil {
		return fmt.Errorf("evalcache: save %s: %w", fp, err)
	}
	c.saves.Add(1)
	c.savedEnt.Add(int64(len(merged.Sols) + len(merged.Opts)))
	return nil
}

// Stats returns the cache's lifetime counters. Nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Loads:        c.loads.Load(),
		LoadHits:     c.loadHits.Load(),
		Saves:        c.saves.Load(),
		SavedEntries: c.savedEnt.Load(),
	}
}

// encode renders magic + payload digest + gob(entry).
func encode(e *Entry) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return nil, fmt.Errorf("evalcache: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, len(magic)+len(sum)+payload.Len())
	out = append(out, magic...)
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// decode is encode's inverse, rejecting anything that is not a complete,
// intact file. It never panics on hostile input: framing is length-checked
// and the digest gate means gob only ever sees bytes we wrote.
func decode(raw []byte) (*Entry, bool) {
	if len(raw) < len(magic)+sha256.Size {
		return nil, false
	}
	if !bytes.Equal(raw[:len(magic)], magic) {
		return nil, false
	}
	payload := raw[len(magic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[len(magic):len(magic)+sha256.Size], sum[:]) {
		return nil, false
	}
	e := &Entry{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(e); err != nil {
		return nil, false
	}
	if e.Sols == nil {
		e.Sols = make(map[string]*redundancy.Solution)
	}
	if e.Opts == nil {
		e.Opts = make(map[string]*redundancy.Solution)
	}
	return e, true
}
