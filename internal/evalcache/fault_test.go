package evalcache

import (
	"errors"
	"io"
	"syscall"
	"testing"

	"repro/internal/faultject"
)

const faultFP = "0123456789abcdef0123456789abcdef"

// TestSaveFaultTorn: a torn rename publishes a truncated cache entry; the
// digest gate makes the next Load a clean miss — a cold start, never a
// panic or a corrupt warm start — and a later Save repairs the entry.
func TestSaveFaultTorn(t *testing.T) {
	t.Cleanup(faultject.Reset)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("evalcache.save=torn:after=1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(faultFP, testEntry()); err != nil {
		t.Fatalf("torn save should appear to succeed: %v", err)
	}
	faultject.Reset()
	if _, ok := c.Load(faultFP); ok {
		t.Fatal("truncated entry loaded as a warm hit")
	}
	// The cache recovers: a clean save over the damaged entry serves hits.
	if err := c.Save(faultFP, testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Load(faultFP); !ok {
		t.Fatal("repaired entry missed")
	}
}

// TestSaveFaultENOSPCAndShort: write failures surface as their retryable
// error classes and leave no readable (hence no corrupt) entry behind.
func TestSaveFaultENOSPCAndShort(t *testing.T) {
	t.Cleanup(faultject.Reset)
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("evalcache.save=enospc:after=1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(faultFP, testEntry()); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected ENOSPC: %v", err)
	}
	if _, ok := c.Load(faultFP); ok {
		t.Fatal("entry exists after failed save")
	}

	faultject.Reset()
	if err := faultject.Arm("evalcache.save=short:after=1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(faultFP, testEntry()); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("injected short write: %v", err)
	}
	if _, ok := c.Load(faultFP); ok {
		t.Fatal("entry exists after short save")
	}
}
