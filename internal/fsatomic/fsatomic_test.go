package fsatomic

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultject"
)

// TestWriteFileInstalls: the write lands atomically, replaces prior
// content, and leaves no temp litter.
func TestWriteFileInstalls(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	for _, content := range []string{"first", "second, longer than the first"} {
		if err := WriteFile(path, []byte(content)); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("read back %q (%v), want %q", got, err, content)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("dir holds %d entries after installs, want 1 (temp litter?)", len(ents))
	}
}

// TestInstallStreams: Install renders through the writer into the final
// path; a writer error aborts without touching the destination.
func TestInstallStreams(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := Install(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "streamed")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "streamed" {
		t.Fatalf("read back %q", got)
	}
	boom := errors.New("render failed")
	if err := Install(path, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Install error = %v, want render failure", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "streamed" {
		t.Errorf("failed Install clobbered destination: %q", got)
	}
}

// TestFailpointENOSPC: the injected full disk fails up front, classified
// as ENOSPC, and the destination is untouched.
func TestFailpointENOSPC(t *testing.T) {
	t.Cleanup(faultject.Reset)
	path := filepath.Join(t.TempDir(), "out")
	if err := WriteFile(path, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("test.point=enospc:after=1"); err != nil {
		t.Fatal(err)
	}
	err := WriteFileFP(path, []byte("update"), "test.point")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("error = %v, want ENOSPC", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "base" {
		t.Errorf("destination changed on injected ENOSPC: %q", got)
	}
	// The rule fired once; the next write goes through.
	if err := WriteFileFP(path, []byte("update"), "test.point"); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
}

// TestFailpointShortWrite: the short write errors with io.ErrShortWrite
// and leaves neither destination damage nor temp litter.
func TestFailpointShortWrite(t *testing.T) {
	t.Cleanup(faultject.Reset)
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("base")); err != nil {
		t.Fatal(err)
	}
	if err := faultject.Arm("test.point=short"); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileFP(path, []byte("update"), "test.point"); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("error = %v, want short write", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "base" {
		t.Errorf("destination changed on injected short write: %q", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp litter left behind: %s", e.Name())
		}
	}
}

// TestFailpointTornRename: the install "succeeds" but publishes truncated
// content — the failure mode downstream CRC framing must absorb.
func TestFailpointTornRename(t *testing.T) {
	t.Cleanup(faultject.Reset)
	path := filepath.Join(t.TempDir(), "out")
	if err := faultject.Arm("test.point=torn"); err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789")
	if err := WriteFileFP(path, data, "test.point"); err != nil {
		t.Fatalf("torn rename should not error: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data)/2 {
		t.Errorf("torn install published %d bytes, want %d", len(got), len(data)/2)
	}
}

// TestDisarmedPassThrough: with nothing armed, the failpoint variant is
// the plain write.
func TestDisarmedPassThrough(t *testing.T) {
	faultject.Reset()
	path := filepath.Join(t.TempDir(), "out")
	if err := WriteFileFP(path, []byte("data"), "test.point"); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "data" {
		t.Fatalf("read back %q", got)
	}
}

// TestSyncDir: fsync on a real directory succeeds (or is tolerated), and
// a missing directory errors.
func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Errorf("SyncDir(tempdir) = %v", err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("SyncDir of missing dir succeeded")
	}
}
