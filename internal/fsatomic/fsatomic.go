// Package fsatomic is the one shared implementation of the atomic file
// install idiom: write a temp file in the destination directory, fsync
// it, rename it over the destination, then fsync the parent directory so
// a power cut after the rename cannot leave the publish unrecorded in
// the directory itself. Every temp+rename site in the tree (shard
// manifests, lease files, evalcache entries, trace snapshots) goes
// through here, and the failpoint-aware variants cooperate with
// faultject to inject ENOSPC, short writes, and torn renames exactly at
// the install boundary.
package fsatomic

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/faultject"
)

// WriteFile atomically installs data at path.
func WriteFile(path string, data []byte) error {
	return WriteFileFP(path, data, "")
}

// WriteFileFP is WriteFile with a faultject failpoint consulted before
// the install: enospc fails up front, short lands half the temp bytes
// and errors, torn publishes truncated content (the rename succeeds but
// the payload is cut, as after an unsynced write plus power cut), and
// kill terminates the process between temp write and rename.
func WriteFileFP(path string, data []byte, point string) error {
	kill := false
	if point != "" && faultject.Enabled() {
		if f := faultject.Fire(point); f != nil {
			switch f.Kind {
			case faultject.KindENOSPC:
				return &fs.PathError{Op: "write", Path: path, Err: syscall.ENOSPC}
			case faultject.KindShortWrite:
				tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
				if err == nil {
					tmp.Write(data[:len(data)/2])
					tmp.Close()
					os.Remove(tmp.Name())
				}
				return &fs.PathError{Op: "write", Path: path, Err: io.ErrShortWrite}
			case faultject.KindTornRename:
				data = data[:len(data)/2]
			case faultject.KindKill:
				kill = true
			}
		}
	}
	return install(path, func(f *os.File) error {
		_, err := f.Write(data)
		return err
	}, kill)
}

// Install atomically installs the output of write at path. Used for
// streaming writers (trace snapshots) that render straight into the
// temp file.
func Install(path string, write func(io.Writer) error) error {
	return install(path, func(f *os.File) error { return write(f) }, false)
}

func install(path string, write func(*os.File) error, killBeforeRename bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := write(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if killBeforeRename {
		faultject.Kill()
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	tmp = nil
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so renames inside it are durable.
// Filesystems that reject directory fsync (EINVAL) are tolerated.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	if err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
