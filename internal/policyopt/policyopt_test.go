package policyopt

import (
	"testing"

	"repro/internal/appmodel"
	"repro/internal/checkpoint"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/replication"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func fig1Problem() Problem {
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	return Problem{
		App:       paper.Fig1Application(),
		Arch:      ar,
		Mapping:   []int{0, 0, 1, 1},
		Goal:      sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Overheads: checkpoint.Overheads{Chi: 1, Alpha: 1},
		Bus:       ttp.NewBus(2, pl.Bus.SlotLen),
	}
}

func allPolicy(n int, pol Policy) *Assignment {
	a := &Assignment{Policies: make([]Policy, n), Replicas: replication.Assignment{}}
	for i := range a.Policies {
		a.Policies[i] = pol
	}
	return a
}

func TestPolicyString(t *testing.T) {
	if ReExecution.String() != "re-execution" ||
		Checkpointing.String() != "checkpointing" ||
		Replication.String() != "replication" {
		t.Error("policy names changed")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy formatting")
	}
}

// TestEvaluateAllReExecution: with every process on plain re-execution
// the solution matches the redundancy baseline (Fig. 4a: k=(1,1),
// 340 ms).
func TestEvaluateAllReExecution(t *testing.T) {
	p := fig1Problem()
	sol, err := Evaluate(p, allPolicy(4, ReExecution))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("all-re-execution should be feasible")
	}
	if sol.Ks[0] != 1 || sol.Ks[1] != 1 {
		t.Errorf("ks = %v, want [1 1]", sol.Ks)
	}
	if sol.Schedule.Length != 340 {
		t.Errorf("length = %v, want 340", sol.Schedule.Length)
	}
	for pid, n := range sol.Plan.Segments {
		if n != 1 {
			t.Errorf("process %d segmented under re-execution policy", pid)
		}
	}
}

// TestEvaluateAllCheckpointing beats the re-execution baseline.
func TestEvaluateAllCheckpointing(t *testing.T) {
	p := fig1Problem()
	sol, err := Evaluate(p, allPolicy(4, Checkpointing))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("all-checkpointing should be feasible")
	}
	if sol.Schedule.Length >= 340 {
		t.Errorf("length = %v, want < 340", sol.Schedule.Length)
	}
}

// TestEvaluateMixed: one replicated process composes with checkpointing
// on the rest.
func TestEvaluateMixed(t *testing.T) {
	p := fig1Problem()
	a := allPolicy(4, Checkpointing)
	a.Policies[0] = Replication
	a.Replicas[0] = []int{0, 1}
	sol, err := Evaluate(p, a)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reliable {
		t.Fatal("mixed assignment should be reliable")
	}
	if len(sol.ReplicaOf) != 5 {
		t.Errorf("expanded to %d processes, want 5", len(sol.ReplicaOf))
	}
	if sol.Plan.Segments[0] != 1 || sol.Plan.Recovery[0] != 0 {
		t.Error("replicated process should not carry checkpoint state")
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := fig1Problem()
	// Policy says replication but no replica set.
	a := allPolicy(4, ReExecution)
	a.Policies[2] = Replication
	if _, err := Evaluate(p, a); err == nil {
		t.Error("want error for replication without replicas")
	}
	// Replica set without the policy.
	a = allPolicy(4, ReExecution)
	a.Replicas[1] = []int{0, 1}
	if _, err := Evaluate(p, a); err == nil {
		t.Error("want error for replicas without the policy")
	}
	// Short policy vector.
	if _, err := Evaluate(p, &Assignment{Policies: []Policy{0}, Replicas: replication.Assignment{}}); err == nil {
		t.Error("want error for short policies")
	}
	// Bad goal.
	bad := p
	bad.Goal = sfp.Goal{}
	if _, err := Evaluate(bad, allPolicy(4, ReExecution)); err == nil {
		t.Error("want error for invalid goal")
	}
}

// TestOptimizeNeverWorseThanCheckpointing: the greedy starts from the
// all-checkpointing assignment, so its result can only be equal or
// better.
func TestOptimizeNeverWorseThanCheckpointing(t *testing.T) {
	p := fig1Problem()
	base, err := Evaluate(p, allPolicy(4, Checkpointing))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Feasible() {
		t.Fatal("optimized assignment should be feasible")
	}
	if opt.Schedule.Length > base.Schedule.Length+1e-9 {
		t.Errorf("optimize worsened the schedule: %v vs %v", opt.Schedule.Length, base.Schedule.Length)
	}
}

// TestOptimizeMonoprocessor: with a single node replication is
// impossible; the result is the checkpointing baseline.
func TestOptimizeMonoprocessor(t *testing.T) {
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[1]})
	ar.Levels = []int{3}
	p := Problem{
		App:       paper.Fig1Application(),
		Arch:      ar,
		Mapping:   []int{0, 0, 0, 0},
		Goal:      sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Overheads: checkpoint.Overheads{Chi: 1, Alpha: 1},
	}
	sol, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	for pid, pol := range sol.Assignment.Policies {
		if pol == Replication {
			t.Errorf("process %d replicated on a monoprocessor", pid)
		}
	}
}

// TestOptimizeReplicatesWhenProfitable: craft a system where replicating
// the bottleneck process clearly pays: a high-failure process whose
// re-execution slack dominates an otherwise idle second node.
func TestOptimizeReplicatesWhenProfitable(t *testing.T) {
	b := appmodel.NewBuilder("bottleneck")
	b.Graph("G", 300)
	// One long, moderately unreliable process and two small ones on node
	// 0; node 1 idle. With p = 2.5e-5 the two-replica failure product
	// (6.25e-10 per iteration) meets the goal budget (γ/12000 ≈ 8.3e-10),
	// while the re-execution alternative needs k = 1 and therefore a
	// 152 ms slack that busts the 300 ms deadline.
	big := b.Process("Big", 2)
	s1 := b.Process("S1", 2)
	s2 := b.Process("S2", 2)
	b.Edge("e1", big, s1, 4)
	b.Edge("e2", big, s2, 4)
	app := b.MustBuild()
	mkNode := func(id int, name string) platform.Node {
		return platform.Node{
			ID:   platform.NodeID(id),
			Name: name,
			Versions: []platform.HVersion{{
				Level: 1, Cost: 10,
				WCET:     []float64{150, 20, 20},
				FailProb: []float64{2.5e-5, 1e-6, 1e-6},
			}},
		}
	}
	n0, n1 := mkNode(0, "N0"), mkNode(1, "N1")
	ar := platform.NewArchitecture([]*platform.Node{&n0, &n1})
	p := Problem{
		App:     app,
		Arch:    ar,
		Mapping: []int{0, 0, 0},
		Goal:    sfp.Goal{Gamma: 1e-5, Tau: paper.Hour},
		// Expensive checkpoints so replication is the only way to shed
		// the big process's slack.
		Overheads: checkpoint.Overheads{Chi: 40, Alpha: 40},
		Bus:       ttp.NewBus(2, 1),
	}
	sol, err := Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assignment.Policies[big] != Replication {
		t.Errorf("bottleneck not replicated: %v (SL=%v)", sol.Assignment.Policies, sol.Schedule.Length)
	}
}
