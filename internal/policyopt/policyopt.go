// Package policyopt assigns a software fault-tolerance policy to every
// process — the paper's re-execution, segment-level checkpointing, or
// active replication — and optimizes the assignment for worst-case
// schedule length. This is the "fault tolerance policy assignment"
// problem of the authors' companion work (Pop et al., IEEE TVLSI 2009,
// reference [15] of the paper), layered over this reproduction's SFP
// analysis and shared-slack scheduler.
//
// The unified evaluation composes the mechanisms:
//
//   - replicated processes are cloned onto their replica nodes, leave the
//     per-node re-execution analysis and contribute an all-replicas-fail
//     term to the system failure probability;
//   - the remaining processes recover by re-execution, with the
//     shared-slack-aware checkpoint planner deciding which of them are
//     segmented (a plain re-execution is a one-segment plan);
//   - the re-execution budgets k_j are assigned greedily on the combined
//     failure model, and the schedule is built with per-process recovery
//     costs (one segment + μ for checkpointed processes, zero for
//     replicas).
//
// Optimize starts from the all-re-execution assignment and greedily
// replicates, one at a time, the process whose replication most shortens
// the worst-case schedule, as long as it helps; checkpointing is always
// applied where profitable by the planner.
package policyopt

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/checkpoint"
	"repro/internal/platform"
	"repro/internal/prob"
	"repro/internal/replication"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Policy identifies the fault-tolerance mechanism of one process.
type Policy int

const (
	// ReExecution is the paper's whole-process re-execution.
	ReExecution Policy = iota
	// Checkpointing re-executes only the failed segment.
	Checkpointing
	// Replication runs the process on several nodes simultaneously.
	Replication
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case ReExecution:
		return "re-execution"
	case Checkpointing:
		return "checkpointing"
	case Replication:
		return "replication"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Problem bundles the inputs of the policy assignment.
type Problem struct {
	App     *appmodel.Application
	Arch    *platform.Architecture
	Mapping []int
	Goal    sfp.Goal
	// Overheads are the checkpointing overheads; zero disables
	// checkpointing benefit (segments stay at 1).
	Overheads checkpoint.Overheads
	// Bus carries cross-node messages (nil = instantaneous). The bus is
	// Reset before every schedule evaluation.
	Bus sched.Bus
	// MaxSegments bounds checkpoint counts (0 = 8).
	MaxSegments int
	// MaxK caps re-executions per node (0 = sfp.DefaultMaxK).
	MaxK int
}

// Assignment is a complete policy assignment.
type Assignment struct {
	// Policies[i] is the mechanism of process i.
	Policies []Policy
	// Replicas holds the replica nodes of every Replication process.
	Replicas replication.Assignment
}

// Solution is one evaluated assignment.
type Solution struct {
	Assignment *Assignment
	// Plan carries the segment counts of checkpointed processes (indexed
	// by original ProcID; replicas hold 1).
	Plan *checkpoint.Plan
	// Ks are the per-node re-execution budgets.
	Ks []int
	// Schedule is the static schedule of the expanded application.
	Schedule *sched.Schedule
	// ReplicaOf maps expanded processes to original IDs.
	ReplicaOf   []appmodel.ProcID
	Reliable    bool
	Schedulable bool
}

// Feasible reports whether the solution is reliable and schedulable.
func (s *Solution) Feasible() bool { return s != nil && s.Reliable && s.Schedulable }

func (p *Problem) maxSegments() int {
	if p.MaxSegments > 0 {
		return p.MaxSegments
	}
	return 8
}

func (p *Problem) maxK() int {
	if p.MaxK > 0 {
		return p.MaxK
	}
	return sfp.DefaultMaxK
}

// Evaluate analyses and schedules one assignment.
func Evaluate(p Problem, a *Assignment) (*Solution, error) {
	if err := p.Goal.Validate(); err != nil {
		return nil, err
	}
	n := p.App.NumProcesses()
	if len(p.Mapping) != n {
		return nil, fmt.Errorf("policyopt: mapping covers %d of %d processes", len(p.Mapping), n)
	}
	if len(a.Policies) != n {
		return nil, fmt.Errorf("policyopt: policies cover %d of %d processes", len(a.Policies), n)
	}
	for pid, pol := range a.Policies {
		_, repl := a.Replicas[appmodel.ProcID(pid)]
		if (pol == Replication) != repl {
			return nil, fmt.Errorf("policyopt: process %d policy %v inconsistent with replica set", pid, pol)
		}
	}

	// Expand replicas.
	rp := replication.Problem{
		App:      p.App,
		Arch:     p.Arch,
		Mapping:  p.Mapping,
		Replicas: a.Replicas,
		Goal:     p.Goal,
	}
	if err := rp.Validate(); err != nil {
		return nil, err
	}
	expApp, expMapping, replicaOf, err := replication.Expand(rp)
	if err != nil {
		return nil, err
	}
	expArch := replication.ExpandedArch(rp, replicaOf)

	// Fixed point between budgets and segment plans, as in
	// checkpoint.Evaluate.
	ks := make([]int, len(p.Arch.Nodes))
	var plan *checkpoint.Plan
	reliable := false
	for round := 0; round < 4; round++ {
		plan, err = planSegments(p, a, ks)
		if err != nil {
			return nil, err
		}
		next, ok := assignKs(p, a, plan)
		if !ok {
			return &Solution{Assignment: a, Plan: plan, Ks: next, ReplicaOf: replicaOf}, nil
		}
		reliable = true
		if equalInts(next, ks) {
			ks = next
			break
		}
		ks = next
	}

	// Scheduler overrides over the expanded process set.
	extra := make([]float64, expApp.NumProcesses())
	recovery := make([]float64, expApp.NumProcesses())
	for pid := 0; pid < expApp.NumProcesses(); pid++ {
		orig := replicaOf[pid]
		if a.Policies[orig] == Replication {
			extra[pid] = 0
			recovery[pid] = 0
			continue
		}
		extra[pid] = plan.ExtraExec[orig]
		recovery[pid] = plan.Recovery[orig]
	}
	s, err := sched.Build(sched.Input{
		App:       expApp,
		Arch:      expArch,
		Mapping:   expMapping,
		Ks:        ks,
		Bus:       p.Bus,
		ExtraExec: extra,
		Recovery:  recovery,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Assignment:  a,
		Plan:        plan,
		Ks:          ks,
		Schedule:    s,
		ReplicaOf:   replicaOf,
		Reliable:    reliable,
		Schedulable: s.Schedulable(expApp),
	}, nil
}

// planSegments runs the shared-slack checkpoint planner over the
// non-replicated processes only (replicated processes keep one segment).
func planSegments(p Problem, a *Assignment, ks []int) (*checkpoint.Plan, error) {
	plan, err := checkpoint.NewSharedSlackPlan(p.App, p.Arch, p.Mapping, ks, p.Overheads, p.maxSegments())
	if err != nil {
		return nil, err
	}
	for pid := range a.Policies {
		switch a.Policies[pid] {
		case Replication:
			plan.Segments[pid] = 1
			plan.ExtraExec[pid] = 0
			plan.Recovery[pid] = 0
		case ReExecution:
			// Undo any segmentation the planner chose: the process's
			// policy forbids checkpointing.
			if plan.Segments[pid] > 1 {
				plan.Segments[pid] = 1
				plan.ExtraExec[pid] = 0
				v := p.Arch.Version(p.Mapping[pid])
				plan.Recovery[pid] = checkpoint.RecoveryCost(v.WCET[pid], 1, p.App.Procs[pid].Mu)
			}
		}
	}
	return plan, nil
}

// assignKs runs the gradient-guided budget assignment over the combined
// failure model (segment probabilities for re-executed/checkpointed
// processes plus all-replicas-fail terms).
func assignKs(p Problem, a *Assignment, plan *checkpoint.Plan) ([]int, bool) {
	nodeProbs := make([][]float64, len(p.Arch.Nodes))
	for pid := 0; pid < p.App.NumProcesses(); pid++ {
		if a.Policies[pid] == Replication {
			continue
		}
		j := p.Mapping[pid]
		v := p.Arch.Version(j)
		segP := checkpoint.SegmentFailProb(v.FailProb[pid], plan.Segments[pid])
		for s := 0; s < plan.Segments[pid]; s++ {
			nodeProbs[j] = append(nodeProbs[j], segP)
		}
	}
	analysis, err := sfp.NewAnalysis(nodeProbs, p.App.EffectivePeriod(), p.maxK())
	if err != nil {
		return nil, false
	}
	var replFail []float64
	for pid := 0; pid < p.App.NumProcesses(); pid++ {
		nodes, ok := a.Replicas[appmodel.ProcID(pid)]
		if !ok {
			continue
		}
		prod := 1.0
		for _, j := range nodes {
			prod *= p.Arch.Version(j).FailProb[pid]
		}
		replFail = append(replFail, prob.Clamp01(prob.CeilP(prod)))
	}
	sysFail := func(ks []int) float64 {
		fails := make([]float64, 0, len(analysis.Nodes)+len(replFail))
		for j, node := range analysis.Nodes {
			fails = append(fails, node.FailureProb(ks[j]))
		}
		fails = append(fails, replFail...)
		return sfp.SystemFailureProb(fails)
	}
	ks := make([]int, len(p.Arch.Nodes))
	for sfp.Reliability(sysFail(ks), analysis.Period, p.Goal.Tau) < p.Goal.Rho() {
		best, bestFail := -1, 0.0
		for j, node := range analysis.Nodes {
			if ks[j] >= node.MaxK() || node.FailureProb(ks[j]+1) >= node.FailureProb(ks[j]) {
				continue
			}
			ks[j]++
			f := sysFail(ks)
			ks[j]--
			if best < 0 || f < bestFail {
				best, bestFail = j, f
			}
		}
		if best < 0 {
			return ks, false
		}
		ks[best]++
	}
	return ks, true
}

// Optimize greedily improves the policy assignment: starting from
// checkpointed re-execution everywhere, it repeatedly evaluates
// replicating each process on its least-loaded other node and keeps the
// single change that most reduces the worst-case schedule length (among
// reliable solutions), until no change helps. The number of replication
// candidates per round is bounded by the process count, so the search
// terminates after at most n improving rounds.
func Optimize(p Problem) (*Solution, error) {
	n := p.App.NumProcesses()
	cur := &Assignment{
		Policies: make([]Policy, n),
		Replicas: replication.Assignment{},
	}
	for pid := 0; pid < n; pid++ {
		cur.Policies[pid] = Checkpointing
	}
	best, err := Evaluate(p, cur)
	if err != nil {
		return nil, err
	}
	if len(p.Arch.Nodes) < 2 {
		return best, nil // replication needs a second node
	}
	for {
		var improved *Solution
		var improvedAsg *Assignment
		for pid := 0; pid < n; pid++ {
			if cur.Policies[pid] == Replication {
				continue
			}
			other := otherNode(p, pid)
			if other < 0 {
				continue
			}
			trial := cloneAssignment(cur)
			trial.Policies[pid] = Replication
			trial.Replicas[appmodel.ProcID(pid)] = []int{p.Mapping[pid], other}
			sol, err := Evaluate(p, trial)
			if err != nil {
				return nil, err
			}
			if !sol.Reliable {
				continue
			}
			if better(sol, best) && (improved == nil || better(sol, improved)) {
				improved, improvedAsg = sol, trial
			}
		}
		if improved == nil {
			return best, nil
		}
		best, cur = improved, improvedAsg
	}
}

// better prefers feasible solutions, then shorter worst-case schedules.
func better(a, b *Solution) bool {
	if a.Feasible() != b.Feasible() {
		return a.Feasible()
	}
	if a.Schedule == nil || b.Schedule == nil {
		return a.Schedule != nil
	}
	return a.Schedule.Length < b.Schedule.Length-1e-9
}

// otherNode picks the architecture node other than the process's own with
// the smallest total mapped WCET — the cheapest host for a replica.
func otherNode(p Problem, pid int) int {
	own := p.Mapping[pid]
	load := make([]float64, len(p.Arch.Nodes))
	for q := 0; q < p.App.NumProcesses(); q++ {
		load[p.Mapping[q]] += p.Arch.Version(p.Mapping[q]).WCET[q]
	}
	best, bestLoad := -1, 0.0
	for j := range p.Arch.Nodes {
		if j == own {
			continue
		}
		if best < 0 || load[j] < bestLoad {
			best, bestLoad = j, load[j]
		}
	}
	return best
}

func cloneAssignment(a *Assignment) *Assignment {
	cp := &Assignment{
		Policies: append([]Policy(nil), a.Policies...),
		Replicas: replication.Assignment{},
	}
	for pid, nodes := range a.Replicas {
		cp.Replicas[pid] = append([]int(nil), nodes...)
	}
	return cp
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
