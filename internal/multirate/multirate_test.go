package multirate

import (
	"testing"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

// twoRateSpec builds a two-graph application: a fast 2-process control
// loop at 50 ms and a slow 2-process diagnostic chain at 100 ms.
func twoRateSpec(t *testing.T) *Spec {
	t.Helper()
	b := appmodel.NewBuilder("two-rate")
	b.Graph("fast", 40)
	f1 := b.Process("F1", 1)
	f2 := b.Process("F2", 1)
	b.Edge("fe", f1, f2, 4)
	b.Graph("slow", 90)
	s1 := b.Process("S1", 1)
	s2 := b.Process("S2", 1)
	b.Edge("se", s1, s2, 4)
	return &Spec{App: b.MustBuild(), Periods: []float64{50, 100}}
}

// twoNodeArch builds a 2-node single-level architecture over the 4
// original processes.
func twoNodeArch() *platform.Architecture {
	mk := func(id int, name string, scale float64) platform.Node {
		return platform.Node{
			ID:   platform.NodeID(id),
			Name: name,
			Versions: []platform.HVersion{{
				Level: 1, Cost: 5,
				WCET:     []float64{8 * scale, 10 * scale, 15 * scale, 20 * scale},
				FailProb: []float64{1e-5, 1e-5, 1e-5, 1e-5},
			}},
		}
	}
	n0, n1 := mk(0, "N0", 1), mk(1, "N1", 1.1)
	return platform.NewArchitecture([]*platform.Node{&n0, &n1})
}

func TestHyperperiod(t *testing.T) {
	s := twoRateSpec(t)
	h, err := s.Hyperperiod()
	if err != nil {
		t.Fatal(err)
	}
	if h != 100 {
		t.Errorf("hyperperiod %v, want 100", h)
	}
	// Incommensurate-ish but still rational periods.
	s.Periods = []float64{30, 45}
	if h, err = s.Hyperperiod(); err != nil || h != 90 {
		t.Errorf("lcm(30,45) = %v, %v; want 90", h, err)
	}
	// Fractional microseconds rejected.
	s.Periods = []float64{1e-6, 100}
	if _, err := s.Hyperperiod(); err == nil {
		t.Error("want error for sub-microsecond period")
	}
}

func TestValidate(t *testing.T) {
	s := twoRateSpec(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoRateSpec(t)
	bad.Periods = []float64{50}
	if err := bad.Validate(); err == nil {
		t.Error("want error for period count mismatch")
	}
	bad = twoRateSpec(t)
	bad.Periods[0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("want error for zero period")
	}
	bad = twoRateSpec(t)
	bad.Periods[0] = 30 // below the 40 ms deadline
	if err := bad.Validate(); err == nil {
		t.Error("want error for deadline beyond period")
	}
	if err := (&Spec{}).Validate(); err == nil {
		t.Error("want error for nil application")
	}
}

func TestUnroll(t *testing.T) {
	u, err := Unroll(twoRateSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	// Fast graph: 2 instances × 2 processes; slow graph: 1 × 2.
	if u.App.NumProcesses() != 6 {
		t.Fatalf("%d jobs, want 6", u.App.NumProcesses())
	}
	if len(u.App.Graphs) != 3 {
		t.Fatalf("%d job graphs, want 3", len(u.App.Graphs))
	}
	// Releases: fast instance 0 at 0, instance 1 at 50; slow at 0.
	wantRelease := map[string]float64{"F1#0": 0, "F2#0": 0, "F1#1": 50, "F2#1": 50, "S1#0": 0, "S2#0": 0}
	for pid, p := range u.App.Procs {
		if u.Release[pid] != wantRelease[p.Name] {
			t.Errorf("%s released at %v, want %v", p.Name, u.Release[pid], wantRelease[p.Name])
		}
	}
	// Absolute deadlines: fast#1 at 50+40 = 90.
	var fast1 *appmodel.Graph
	for gi := range u.App.Graphs {
		if u.App.Graphs[gi].Name == "fast#1" {
			fast1 = &u.App.Graphs[gi]
		}
	}
	if fast1 == nil || fast1.Deadline != 90 {
		t.Errorf("fast#1 deadline = %+v, want 90", fast1)
	}
	// The job set's period is the hyperperiod.
	if u.App.Period != 100 {
		t.Errorf("period %v, want 100", u.App.Period)
	}
}

func TestEvaluateFeasible(t *testing.T) {
	s := twoRateSpec(t)
	ar := twoNodeArch()
	sol, err := Evaluate(s, ar, []int{0, 0, 1, 1}, sfp.Goal{Gamma: 1e-5, Tau: 3.6e6}, ttp.NewBus(2, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatalf("two-rate system should be feasible: %+v", sol)
	}
	// Jobs respect their releases.
	for job, rel := range sol.Unrolled.Release {
		if sol.Schedule.Start[job] < rel-1e-9 {
			t.Errorf("job %d starts %v before release %v", job, sol.Schedule.Start[job], rel)
		}
	}
	// The second fast instance starts at or after 50 ms.
	for pid, p := range sol.Unrolled.App.Procs {
		if p.Name == "F1#1" && sol.Schedule.Start[pid] < 50 {
			t.Errorf("F1#1 starts at %v, want ≥ 50", sol.Schedule.Start[pid])
		}
	}
}

// TestEvaluateReliabilityScalesWithRate: doubling the fast rate doubles
// that graph's executions per hour; the analysis must still meet the goal
// with at most one extra re-execution.
func TestEvaluateReliabilityScalesWithRate(t *testing.T) {
	s := twoRateSpec(t)
	ar := twoNodeArch()
	goal := sfp.Goal{Gamma: 1e-5, Tau: 3.6e6}
	slow, err := Evaluate(s, ar, []int{0, 0, 1, 1}, goal, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast := twoRateSpec(t)
	fast.Periods = []float64{25, 100}
	fast.App.Graphs[0].Deadline = 25
	fSol, err := Evaluate(fast, ar, []int{0, 0, 1, 1}, goal, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fSol.Reliable {
		t.Fatal("faster rate should still be reliable")
	}
	if fSol.Ks[0] < slow.Ks[0] {
		t.Errorf("faster rate lowered the budget: %v vs %v", fSol.Ks, slow.Ks)
	}
	// Four fast instances now.
	if fSol.Unrolled.App.NumProcesses() != 2*4+2 {
		t.Errorf("%d jobs, want 10", fSol.Unrolled.App.NumProcesses())
	}
}

func TestEvaluateValidation(t *testing.T) {
	s := twoRateSpec(t)
	ar := twoNodeArch()
	goal := sfp.Goal{Gamma: 1e-5, Tau: 3.6e6}
	if _, err := Evaluate(s, ar, []int{0}, goal, nil, 0); err == nil {
		t.Error("want error for short mapping")
	}
	if _, err := Evaluate(s, ar, []int{0, 0, 1, 9}, goal, nil, 0); err == nil {
		t.Error("want error for invalid node")
	}
	if _, err := Evaluate(s, ar, []int{0, 0, 1, 1}, sfp.Goal{}, nil, 0); err == nil {
		t.Error("want error for invalid goal")
	}
}

// TestUnrolledDeadlineTightness: a slow job with a tight absolute
// deadline that the schedule cannot meet flips Schedulable.
func TestUnrolledDeadlineTightness(t *testing.T) {
	s := twoRateSpec(t)
	// Make every process enormous relative to the deadlines.
	ar := twoNodeArch()
	for j := range ar.Nodes {
		for i := range ar.Nodes[j].Versions[0].WCET {
			ar.Nodes[j].Versions[0].WCET[i] = 60
		}
	}
	sol, err := Evaluate(s, ar, []int{0, 0, 1, 1}, sfp.Goal{Gamma: 1e-5, Tau: 3.6e6}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Schedulable {
		t.Error("oversized WCETs should be unschedulable")
	}
}
