// Package multirate extends the framework to applications whose task
// graphs have different activation periods. The paper evaluates a single
// application period T (the SFP condition raises the per-iteration
// survival probability to τ/T); real automotive systems like the CC run
// control loops at several rates. This extension unrolls every graph over
// the hyperperiod — graph G with period T_g contributes H/T_g jobs, the
// r-th released at r·T_g with absolute deadline r·T_g + D_g — schedules
// the job set with release times, and runs the SFP analysis over the
// hyperperiod: each job is one execution of its process, so the per-node
// f-fault combinatorics of the paper apply unchanged with jobs in place
// of processes and τ/H iterations per hour.
package multirate

import (
	"fmt"
	"math"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Spec is a multi-rate application: the base application plus one period
// per graph.
type Spec struct {
	App *appmodel.Application
	// Periods[gi] is the activation period of graph gi in milliseconds.
	Periods []float64
}

// Validate checks the spec: one positive period per graph, each no
// smaller than its graph's deadline (a job must complete before its next
// release in this non-overlapping model).
func (s *Spec) Validate() error {
	if s.App == nil {
		return fmt.Errorf("multirate: nil application")
	}
	if err := s.App.Validate(); err != nil {
		return err
	}
	if len(s.Periods) != len(s.App.Graphs) {
		return fmt.Errorf("multirate: %d periods for %d graphs", len(s.Periods), len(s.App.Graphs))
	}
	for gi, T := range s.Periods {
		if T <= 0 {
			return fmt.Errorf("multirate: graph %d has non-positive period %v", gi, T)
		}
		if s.App.Graphs[gi].Deadline > T {
			return fmt.Errorf("multirate: graph %d deadline %v exceeds its period %v",
				gi, s.App.Graphs[gi].Deadline, T)
		}
	}
	if _, err := s.Hyperperiod(); err != nil {
		return err
	}
	return nil
}

// Hyperperiod returns the least common multiple of the periods. Periods
// are converted to integer microseconds; fractional microseconds are
// rejected.
func (s *Spec) Hyperperiod() (float64, error) {
	if len(s.Periods) == 0 {
		return 0, fmt.Errorf("multirate: no periods")
	}
	lcm := int64(1)
	for gi, T := range s.Periods {
		us := int64(math.Round(T * 1000))
		if us <= 0 || math.Abs(float64(us)-T*1000) > 1e-6 {
			return 0, fmt.Errorf("multirate: graph %d period %v ms is not a whole number of microseconds", gi, T)
		}
		g := gcd(lcm, us)
		lcm = lcm / g * us
		if lcm > int64(1)<<40 { // ≈ 12 days in µs: runaway hyperperiod
			return 0, fmt.Errorf("multirate: hyperperiod overflow (periods too incommensurate)")
		}
	}
	return float64(lcm) / 1000, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Unrolled is the job set of one hyperperiod.
type Unrolled struct {
	// App is the unrolled application: one graph per (graph, instance)
	// pair, with absolute deadlines.
	App *appmodel.Application
	// Release[j] is the release time of job j.
	Release []float64
	// JobOf[j] is the original process of job j.
	JobOf []appmodel.ProcID
	// Hyperperiod is H in milliseconds.
	Hyperperiod float64
}

// Unroll expands the spec over one hyperperiod.
func Unroll(s *Spec) (*Unrolled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	H, err := s.Hyperperiod()
	if err != nil {
		return nil, err
	}
	src := s.App
	out := &appmodel.Application{
		Name:   src.Name + "+hyperperiod",
		Period: H,
	}
	u := &Unrolled{App: out, Hyperperiod: H}
	for gi := range src.Graphs {
		g := &src.Graphs[gi]
		T := s.Periods[gi]
		instances := int(math.Round(H / T))
		for r := 0; r < instances; r++ {
			release := float64(r) * T
			newGraph := appmodel.Graph{
				Name:     fmt.Sprintf("%s#%d", g.Name, r),
				Deadline: release + g.Deadline,
			}
			// Clone processes.
			local := make(map[appmodel.ProcID]appmodel.ProcID, len(g.Procs))
			for _, pid := range g.Procs {
				id := appmodel.ProcID(len(out.Procs))
				out.Procs = append(out.Procs, appmodel.Process{
					ID:   id,
					Name: fmt.Sprintf("%s#%d", src.Procs[pid].Name, r),
					Mu:   src.Procs[pid].Mu,
				})
				u.Release = append(u.Release, release)
				u.JobOf = append(u.JobOf, pid)
				local[pid] = id
				newGraph.Procs = append(newGraph.Procs, id)
			}
			// Clone edges.
			for _, eid := range g.Edges {
				e := src.Edges[eid]
				id := appmodel.EdgeID(len(out.Edges))
				out.Edges = append(out.Edges, appmodel.Edge{
					ID:   id,
					Name: fmt.Sprintf("%s#%d", e.Name, r),
					Src:  local[e.Src],
					Dst:  local[e.Dst],
					Size: e.Size,
				})
				newGraph.Edges = append(newGraph.Edges, id)
			}
			out.Graphs = append(out.Graphs, newGraph)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("multirate: unrolled application invalid: %w", err)
	}
	return u, nil
}

// Solution is one evaluated multi-rate deployment.
type Solution struct {
	Unrolled *Unrolled
	// Ks are the per-node re-execution budgets per hyperperiod.
	Ks []int
	// Schedule covers the whole hyperperiod (jobs at their releases).
	Schedule    *sched.Schedule
	Reliable    bool
	Schedulable bool
}

// Feasible reports whether the deployment is reliable and schedulable.
func (s *Solution) Feasible() bool { return s != nil && s.Reliable && s.Schedulable }

// Evaluate analyses and schedules a multi-rate deployment: mapping binds
// the *original* processes to architecture nodes (all jobs of a process
// run on its node, as a static cyclic executive requires).
func Evaluate(s *Spec, ar *platform.Architecture, mapping []int, goal sfp.Goal, bus sched.Bus, maxK int) (*Solution, error) {
	if err := goal.Validate(); err != nil {
		return nil, err
	}
	if maxK <= 0 {
		maxK = sfp.DefaultMaxK
	}
	u, err := Unroll(s)
	if err != nil {
		return nil, err
	}
	if len(mapping) != s.App.NumProcesses() {
		return nil, fmt.Errorf("multirate: mapping covers %d of %d processes", len(mapping), s.App.NumProcesses())
	}
	jobMapping := make([]int, u.App.NumProcesses())
	for j, orig := range u.JobOf {
		m := mapping[orig]
		if m < 0 || m >= len(ar.Nodes) {
			return nil, fmt.Errorf("multirate: process %d mapped to invalid node %d", orig, m)
		}
		jobMapping[j] = m
	}

	// SFP over the hyperperiod: every job is one execution.
	nodeProbs := make([][]float64, len(ar.Nodes))
	for j, orig := range u.JobOf {
		v := ar.Version(jobMapping[j])
		if v == nil {
			return nil, fmt.Errorf("multirate: node %d has no selected version", jobMapping[j])
		}
		nodeProbs[jobMapping[j]] = append(nodeProbs[jobMapping[j]], v.FailProb[orig])
	}
	analysis, err := sfp.NewAnalysis(nodeProbs, u.Hyperperiod, maxK)
	if err != nil {
		return nil, err
	}
	ks := make([]int, len(ar.Nodes))
	reliable := true
	for !analysis.MeetsGoal(ks, goal) {
		best, bestRel := -1, 0.0
		for j, node := range analysis.Nodes {
			if ks[j] >= node.MaxK() || node.FailureProb(ks[j]+1) >= node.FailureProb(ks[j]) {
				continue
			}
			ks[j]++
			rel := analysis.SystemReliability(ks, goal.Tau)
			ks[j]--
			if best < 0 || rel > bestRel {
				best, bestRel = j, rel
			}
		}
		if best < 0 {
			reliable = false
			break
		}
		ks[best]++
	}

	// Schedule the job set with releases; the scheduler needs WCET and
	// failure tables indexed by job ID.
	jobArch := jobView(ar, u)
	schedule, err := sched.Build(sched.Input{
		App:     u.App,
		Arch:    jobArch,
		Mapping: jobMapping,
		Ks:      ks,
		Bus:     bus,
		Release: u.Release,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Unrolled:    u,
		Ks:          ks,
		Schedule:    schedule,
		Reliable:    reliable,
		Schedulable: schedule.Schedulable(u.App),
	}, nil
}

// jobView re-indexes the selected h-versions over the job set.
func jobView(ar *platform.Architecture, u *Unrolled) *platform.Architecture {
	nodes := make([]*platform.Node, len(ar.Nodes))
	for j := range ar.Nodes {
		v := ar.Version(j)
		w := make([]float64, len(u.JobOf))
		fp := make([]float64, len(u.JobOf))
		for job, orig := range u.JobOf {
			w[job] = v.WCET[orig]
			fp[job] = v.FailProb[orig]
		}
		nodes[j] = &platform.Node{
			ID:   platform.NodeID(j),
			Name: ar.Nodes[j].Name,
			Versions: []platform.HVersion{{
				Level:    1,
				Cost:     v.Cost,
				WCET:     w,
				FailProb: fp,
			}},
		}
	}
	return platform.NewArchitecture(nodes)
}
