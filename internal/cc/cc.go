// Package cc reconstructs the real-life example of the paper's Section 7:
// a vehicle cruise controller (CC) with 32 processes mapped on an
// architecture of three computation nodes — the Electronic Throttle Module
// (ETM), the Anti-lock Braking System (ABS) and the Transmission Control
// Module (TCM).
//
// The paper gives the experiment's parameters (32 processes, three named
// nodes, five h-versions, HPD = 25%, SER = 2·10^-12 for the least hardened
// versions, ρ = 1 − 1.2·10^-5 per hour, μ between 1 and 10% of execution
// times, deadline 300 ms) but not the graph itself, which comes from the
// first author's licentiate thesis. This package synthesizes a plausible
// cruise-controller task graph at exactly that scale: a
// sensing → filtering → fusion → control → distribution → actuation
// pipeline with diagnostic branches. The reproduction targets the paper's
// qualitative result: CC is unschedulable under MIN, schedulable under MAX
// and OPT, with OPT substantially cheaper than MAX.
package cc

import (
	"fmt"

	"repro/internal/appmodel"
	"repro/internal/faultsim"
	"repro/internal/platform"
	"repro/internal/sfp"
	"repro/internal/taskgen"
)

// Parameters from Section 7 of the paper.
const (
	// Deadline is the CC deadline in milliseconds.
	Deadline = 300
	// Gamma is γ in ρ = 1 − 1.2e-5 within one hour.
	Gamma = 1.2e-5
	// SER is the soft error rate per clock cycle of the least hardened
	// versions.
	SER = 2e-12
	// HPDPercent is the hardening performance degradation.
	HPDPercent = 25
	// NumLevels is the number of h-versions per node.
	NumLevels = 5
	// MuFrac is the recovery overhead as a fraction of the WCET (the
	// paper varies it between 1 and 10%; we fix the midpoint).
	MuFrac = 0.055
	// CyclesPerMs converts WCET to clock cycles; the CC modules run a
	// faster clock than the synthetic generator's nominal one, which puts
	// the unhardened failure probabilities in the regime where software-
	// only fault tolerance needs k = 4 re-executions per node — the
	// regime in which the paper reports MIN to be unschedulable.
	CyclesPerMs = 10 * faultsim.DefaultCyclesPerMs
	// AVF is the architectural vulnerability factor of the CC control
	// code: the fraction-weighted multiplier between raw bit flips and
	// process-visible failures. Together with CyclesPerMs it calibrates
	// the unhardened failure probabilities into the regime where
	// software-only fault tolerance needs k = 4 re-executions per node —
	// the regime in which the paper reports MIN to be unschedulable.
	AVF = 3.0
)

// stage describes one pipeline stage of the CC graph.
type stage struct {
	names []string
	wcet  []float64 // ms on the fastest node at minimum hardening
}

// stages is the 32-process cruise-controller pipeline. WCETs are sized so
// that the total load (~540 ms) needs all three nodes within the 300 ms
// deadline, the way the real CC spreads across ETM, ABS and TCM.
var stages = []stage{
	{ // sensing
		names: []string{"SpeedSensor", "RPMSensor", "ThrottlePosSensor", "BrakePedalSensor", "DriverButtons", "GearPosSensor"},
		wcet:  []float64{12, 12, 14, 10, 8, 10},
	},
	{ // per-sensor filtering
		names: []string{"SpeedFilter", "RPMFilter", "ThrottlePosFilter", "BrakePedalFilter", "ButtonDebounce", "GearPosFilter"},
		wcet:  []float64{16, 16, 18, 14, 10, 14},
	},
	{ // fusion
		names: []string{"VehicleStateEstimator", "TargetSpeedCalc", "PlausibilityCheck"},
		wcet:  []float64{42, 22, 18},
	},
	{ // control
		names: []string{"PIController", "Feedforward", "TractionArbitration", "ShiftLogic", "ABSCoordination"},
		wcet:  []float64{36, 20, 22, 20, 22},
	},
	{ // distribution
		names: []string{"ThrottleSetpoint", "BrakeSetpoint", "TransmissionSetpoint", "TorqueLimit"},
		wcet:  []float64{16, 16, 16, 14},
	},
	{ // actuation and monitoring
		names: []string{"ThrottleActuator", "BrakeActuator", "TransActuator", "ThrottleMonitor", "BrakeMonitor", "TransMonitor", "BusOutput", "DiagnosticsLog"},
		wcet:  []float64{18, 18, 18, 12, 12, 12, 10, 10},
	},
}

// nodeSpec describes one CC computation node.
type nodeSpec struct {
	name     string
	speed    float64 // WCET multiplier relative to the fastest node
	baseCost float64 // cost of the unhardened version; level h costs base×h
}

var nodeSpecs = []nodeSpec{
	{"ETM", 1.00, 10},
	{"ABS", 1.05, 12},
	{"TCM", 1.10, 14},
}

// Instance builds the CC application, its three-node platform with five
// h-versions per node, and the reliability goal.
func Instance() (*taskgen.Instance, error) {
	b := appmodel.NewBuilder("cruise-controller")
	b.Graph("CC", Deadline)
	b.Period(Deadline)

	var ids [][]appmodel.ProcID
	var wcets []float64
	for _, st := range stages {
		var layer []appmodel.ProcID
		for i, name := range st.names {
			w := st.wcet[i]
			layer = append(layer, b.Process(name, w*MuFrac))
			wcets = append(wcets, w)
		}
		ids = append(ids, layer)
	}

	edges := 0
	addEdge := func(src, dst appmodel.ProcID) {
		edges++
		b.Edge(fmt.Sprintf("m%d", edges), src, dst, 8)
	}
	// Sensors feed their filters 1:1.
	for i := range ids[0] {
		addEdge(ids[0][i], ids[1][i])
	}
	// Filters feed fusion: speed/rpm/gear into the state estimator,
	// buttons and speed into target speed, throttle/brake into the
	// plausibility check.
	addEdge(ids[1][0], ids[2][0])
	addEdge(ids[1][1], ids[2][0])
	addEdge(ids[1][5], ids[2][0])
	addEdge(ids[1][4], ids[2][1])
	addEdge(ids[1][0], ids[2][1])
	addEdge(ids[1][2], ids[2][2])
	addEdge(ids[1][3], ids[2][2])
	// Fusion feeds control.
	addEdge(ids[2][0], ids[3][0]) // state -> PI
	addEdge(ids[2][1], ids[3][0]) // target -> PI
	addEdge(ids[2][1], ids[3][1]) // target -> feedforward
	addEdge(ids[2][0], ids[3][2]) // state -> traction
	addEdge(ids[2][2], ids[3][2]) // plausibility -> traction
	addEdge(ids[2][0], ids[3][3]) // state -> shift logic
	addEdge(ids[2][2], ids[3][4]) // plausibility -> ABS coordination
	// Control feeds distribution.
	addEdge(ids[3][0], ids[4][0])
	addEdge(ids[3][1], ids[4][0])
	addEdge(ids[3][2], ids[4][1])
	addEdge(ids[3][4], ids[4][1])
	addEdge(ids[3][3], ids[4][2])
	addEdge(ids[3][0], ids[4][3])
	// Distribution feeds actuators and monitors.
	addEdge(ids[4][0], ids[5][0])
	addEdge(ids[4][1], ids[5][1])
	addEdge(ids[4][2], ids[5][2])
	addEdge(ids[4][0], ids[5][3])
	addEdge(ids[4][1], ids[5][4])
	addEdge(ids[4][2], ids[5][5])
	addEdge(ids[4][3], ids[5][6])
	addEdge(ids[4][3], ids[5][7])

	app, err := b.Build()
	if err != nil {
		return nil, err
	}

	pl := &platform.Platform{Bus: platform.BusSpec{SlotLen: 0.5}}
	for t, spec := range nodeSpecs {
		node := platform.Node{ID: platform.NodeID(t), Name: spec.name}
		for h := 1; h <= NumLevels; h++ {
			factor := taskgen.HPDFactor(h, NumLevels, HPDPercent)
			w := make([]float64, len(wcets))
			p := make([]float64, len(wcets))
			for i, base := range wcets {
				w[i] = base * spec.speed * factor
				p[i] = AVF * faultsim.DeriveFailProb(w[i], CyclesPerMs, SER, h, faultsim.DefaultReductionPerLevel)
			}
			node.Versions = append(node.Versions, platform.HVersion{
				Level:    h,
				Cost:     spec.baseCost * float64(h),
				WCET:     w,
				FailProb: p,
			})
		}
		pl.Nodes = append(pl.Nodes, node)
	}
	if err := pl.Validate(app.NumProcesses()); err != nil {
		return nil, err
	}
	return &taskgen.Instance{
		App:      app,
		Platform: pl,
		Goal:     sfp.Goal{Gamma: Gamma, Tau: 3.6e6},
	}, nil
}
