package cc

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

func TestCCStructure(t *testing.T) {
	inst, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	if inst.App.NumProcesses() != 32 {
		t.Fatalf("CC has %d processes, want 32", inst.App.NumProcesses())
	}
	if len(inst.Platform.Nodes) != 3 {
		t.Fatalf("CC has %d nodes, want 3 (ETM, ABS, TCM)", len(inst.Platform.Nodes))
	}
	names := []string{"ETM", "ABS", "TCM"}
	for i, n := range inst.Platform.Nodes {
		if n.Name != names[i] {
			t.Errorf("node %d named %q, want %q", i, n.Name, names[i])
		}
		if len(n.Versions) != NumLevels {
			t.Errorf("node %s has %d h-versions, want %d", n.Name, len(n.Versions), NumLevels)
		}
	}
	if inst.App.Graphs[0].Deadline != Deadline {
		t.Errorf("deadline %v, want %v", inst.App.Graphs[0].Deadline, float64(Deadline))
	}
	if inst.Goal.Gamma != Gamma {
		t.Errorf("gamma %v, want %v", inst.Goal.Gamma, Gamma)
	}
	// Every process participates in the pipeline: no isolated nodes.
	pred := inst.App.Predecessors()
	succ := inst.App.Successors()
	for pid, p := range inst.App.Procs {
		if len(pred[pid]) == 0 && len(succ[pid]) == 0 {
			t.Errorf("process %q is isolated", p.Name)
		}
	}
}

// TestCCDeterministic: two builds are identical.
func TestCCDeterministic(t *testing.T) {
	a, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.App.Edges) != len(b.App.Edges) || a.Goal != b.Goal {
		t.Error("CC instance not deterministic")
	}
}

// TestCCStrategies reproduces the paper's CC result (Section 7): the CC is
// not schedulable with the MIN strategy; it is schedulable with MAX and
// OPT; and OPT, trading hardware against software redundancy, is
// substantially cheaper than MAX (the paper reports 66%; our
// reconstruction lands at ≈69%).
func TestCCStrategies(t *testing.T) {
	inst, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	run := func(s core.Strategy) *core.Result {
		t.Helper()
		res, err := core.Run(inst.App, inst.Platform, core.Options{Goal: inst.Goal, Strategy: s})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	min := run(core.MIN)
	if min.Feasible {
		t.Errorf("MIN should be unschedulable on the CC, got cost %v", min.Cost)
	}
	max := run(core.MAX)
	if !max.Feasible {
		t.Fatal("MAX should be schedulable on the CC")
	}
	opt := run(core.OPT)
	if !opt.Feasible {
		t.Fatal("OPT should be schedulable on the CC")
	}
	improvement := 100 * (max.Cost - opt.Cost) / max.Cost
	if improvement < 50 {
		t.Errorf("OPT improves on MAX by %.0f%%, want at least 50%% (paper: 66%%)", improvement)
	}
	// The deadline actually holds in the worst case.
	if !opt.Schedule.Schedulable(inst.App) {
		t.Error("OPT schedule violates the 300 ms deadline")
	}
	// The load (>500 ms against a 300 ms deadline) forces all three
	// modules.
	if len(opt.Arch.Nodes) != 3 {
		t.Errorf("OPT uses %d nodes, want all 3", len(opt.Arch.Nodes))
	}
}

// TestCCPerProcessSlackNoBetter: under the more pessimistic per-process
// slack model OPT cannot be cheaper than under the paper's shared model.
func TestCCPerProcessSlackNoBetter(t *testing.T) {
	inst, err := Instance()
	if err != nil {
		t.Fatal(err)
	}
	shared, err := core.Run(inst.App, inst.Platform, core.Options{Goal: inst.Goal, Strategy: core.OPT})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := core.Run(inst.App, inst.Platform, core.Options{Goal: inst.Goal, Strategy: core.OPT, Model: sched.SlackPerProcess})
	if err != nil {
		t.Fatal(err)
	}
	if pp.Feasible && shared.Feasible && pp.Cost < shared.Cost {
		t.Errorf("per-process slack cheaper (%v) than shared (%v)", pp.Cost, shared.Cost)
	}
}
