package replication

import (
	"math"
	"testing"

	"repro/internal/appmodel"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func fig1Problem(replicas Assignment) Problem {
	pl := paper.Fig1Platform()
	ar := platform.NewArchitecture([]*platform.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	return Problem{
		App:      paper.Fig1Application(),
		Arch:     ar,
		Mapping:  []int{0, 0, 1, 1},
		Replicas: replicas,
		Goal:     sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
		Bus:      ttp.NewBus(2, pl.Bus.SlotLen),
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Problem)
	}{
		{"nil app", func(p *Problem) { p.App = nil }},
		{"short mapping", func(p *Problem) { p.Mapping = []int{0} }},
		{"unknown process", func(p *Problem) { p.Replicas = Assignment{99: {0, 1}} }},
		{"single replica", func(p *Problem) { p.Replicas = Assignment{0: {0}} }},
		{"bad node", func(p *Problem) { p.Replicas = Assignment{0: {0, 7}} }},
		{"duplicate node", func(p *Problem) { p.Replicas = Assignment{0: {0, 0}} }},
		{"primary mismatch", func(p *Problem) { p.Replicas = Assignment{0: {1, 0}} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := fig1Problem(nil)
			c.mut(&p)
			if err := p.Validate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

// TestNoReplicationMatchesReExecution: an empty assignment must reproduce
// the plain re-execution analysis (k = 1 per node on Fig. 4a).
func TestNoReplicationMatchesReExecution(t *testing.T) {
	sol, err := Evaluate(fig1Problem(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("Fig. 4a should be feasible")
	}
	if sol.Ks[0] != 1 || sol.Ks[1] != 1 {
		t.Errorf("ks = %v, want [1 1]", sol.Ks)
	}
	if sol.Schedule.Length != 340 {
		t.Errorf("length = %v, want 340 (the plain Fig. 4a schedule)", sol.Schedule.Length)
	}
}

// TestReplicatedProcessNeedsNoSlack: replicating P1 on both nodes removes
// it from the re-execution analysis; its replicas never extend the
// recovery quantum.
func TestReplicatedProcessNeedsNoSlack(t *testing.T) {
	p := fig1Problem(Assignment{0: {0, 1}})
	sol, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reliable {
		t.Fatal("should be reliable")
	}
	// The expanded application has one clone.
	if len(sol.ReplicaOf) != 5 {
		t.Fatalf("expanded to %d processes, want 5", len(sol.ReplicaOf))
	}
	if sol.ReplicaOf[4] != 0 {
		t.Errorf("clone of process %d, want 0", sol.ReplicaOf[4])
	}
	// The all-replicas-fail term for P1: 1.2e-5 (on N1^2) × 1e-5 (on
	// N2^2) ≈ 1.2e-10, far below the per-node re-execution residuals, so
	// k = 1 per node still suffices.
	if sol.Ks[0] != 1 || sol.Ks[1] != 1 {
		t.Errorf("ks = %v", sol.Ks)
	}
}

// TestReplicationReliabilityMath: with every process replicated on both
// nodes, no re-executions are needed at all, and the system failure
// probability is the union of the per-process products.
func TestReplicationReliabilityMath(t *testing.T) {
	p := fig1Problem(Assignment{
		0: {0, 1}, 1: {0, 1}, 2: {1, 0}, 3: {1, 0},
	})
	p.Mapping = []int{0, 0, 1, 1}
	sol, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reliable {
		t.Fatal("full replication should be reliable")
	}
	if sol.Ks[0] != 0 || sol.Ks[1] != 0 {
		t.Errorf("ks = %v, want zeros (nothing to re-execute)", sol.Ks)
	}
	// Union of the four pairwise products (each ≈ 1e-10, rounded up to
	// the 1e-11 grid).
	expected := 0.0
	pairs := [][2]float64{
		{1.2e-5, 1e-5}, {1.3e-5, 1.2e-5}, {1.2e-5, 1.4e-5}, {1.3e-5, 1.6e-5},
	}
	for _, pr := range pairs {
		v := math.Ceil(pr[0]*pr[1]*1e11) / 1e11
		expected = expected + v - expected*v
	}
	expected = math.Ceil(expected*1e11) / 1e11
	if math.Abs(sol.SystemFailureProb-expected) > 1e-11 {
		t.Errorf("system failure %.3g, want %.3g", sol.SystemFailureProb, expected)
	}
}

// TestReplicationCostsBusAndTime: replicas consume processor time; the
// schedule grows relative to no replication on the same mapping when the
// replicated process is off the recovery-critical node.
func TestReplicationCostsBusAndTime(t *testing.T) {
	base, err := Evaluate(fig1Problem(nil))
	if err != nil {
		t.Fatal(err)
	}
	repl, err := Evaluate(fig1Problem(Assignment{1: {0, 1}}))
	if err != nil {
		t.Fatal(err)
	}
	// P2's replica loads node N2 and duplicates message m3: the fault-free
	// load strictly grows, even though the slack may shrink.
	var baseLoad, replLoad float64
	for pid := range base.Schedule.Finish {
		baseLoad += base.Schedule.Finish[pid] - base.Schedule.Start[pid]
	}
	for pid := range repl.Schedule.Finish {
		replLoad += repl.Schedule.Finish[pid] - repl.Schedule.Start[pid]
	}
	if replLoad <= baseLoad {
		t.Errorf("replication did not add load: %v vs %v", replLoad, baseLoad)
	}
}

// TestExpandPreservesDeadlines: clones belong to the original's graph and
// deadlines are checked for them too.
func TestExpandPreservesDeadlines(t *testing.T) {
	p := fig1Problem(Assignment{3: {1, 0}})
	sol, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Schedule.WorstFinish) != 5 {
		t.Fatalf("expanded schedule covers %d processes", len(sol.Schedule.WorstFinish))
	}
	// Feasibility implies the clone met the 360 ms deadline as well.
	if sol.Schedulable {
		for pid, wf := range sol.Schedule.WorstFinish {
			if wf > paper.Fig1Deadline {
				t.Errorf("process %d worst finish %v beyond deadline yet schedulable", pid, wf)
			}
		}
	}
}

// TestReplicationUnreachableGoal: if even full replication cannot reach an
// absurd goal, the evaluation reports unreliable.
func TestReplicationUnreachableGoal(t *testing.T) {
	p := fig1Problem(Assignment{0: {0, 1}})
	p.Goal = sfp.Goal{Gamma: 1e-300, Tau: paper.Hour}
	sol, err := Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reliable {
		t.Error("absurd goal reported reliable")
	}
}

// TestReplicaOfIdentityForOriginals: the first NumProcesses entries map to
// themselves.
func TestReplicaOfIdentityForOriginals(t *testing.T) {
	sol, err := Evaluate(fig1Problem(Assignment{2: {1, 0}}))
	if err != nil {
		t.Fatal(err)
	}
	for pid := 0; pid < 4; pid++ {
		if sol.ReplicaOf[pid] != appmodel.ProcID(pid) {
			t.Errorf("original %d mapped to %d", pid, sol.ReplicaOf[pid])
		}
	}
}
