// Package replication extends the framework with active replication, the
// other software fault-tolerance policy of the authors' companion work
// (reference [15] of the paper) and of the related approaches the paper
// surveys (Girault et al. [5], Xie et al. [20]).
//
// An actively replicated process executes simultaneously on several
// computation nodes. It delivers a result as long as at least one replica
// executes fault-free, so it needs no re-execution and contributes no
// recovery slack; the price is the extra processor time and bus traffic
// of the replicas. Under the fail-silence assumption the consumers of a
// replicated process must, in the worst case, wait for the slowest
// replica (the only fault-free one may be the last to finish).
//
// Analytically the system failure probability becomes
//
//	Pr(fail) = 1 − (1 − Pr(∪_j f > k_j over re-executed processes))
//	             · Π over replicated processes (1 − Π over replicas p)
//
// where the per-node f-fault analysis of package sfp runs over the
// non-replicated processes only, and a replicated process fails the
// system exactly when all of its replicas fail in the same iteration.
package replication

import (
	"fmt"
	"sort"

	"repro/internal/appmodel"
	"repro/internal/platform"
	"repro/internal/prob"
	"repro/internal/sched"
	"repro/internal/sfp"
)

// Assignment maps each replicated process to the architecture nodes its
// replicas run on (at least two nodes, all distinct). Processes absent
// from the map use re-execution on their mapped node as usual.
type Assignment map[appmodel.ProcID][]int

// Problem bundles the inputs of a replication-aware evaluation.
type Problem struct {
	App  *appmodel.Application
	Arch *platform.Architecture
	// Mapping[i] is the node of process i (for replicated processes: the
	// primary replica's node, which must equal Replicas[i][0]).
	Mapping []int
	// Replicas assigns replica node sets to replicated processes.
	Replicas Assignment
	Goal     sfp.Goal
	Bus      sched.Bus
	MaxK     int
}

// Validate checks the replication assignment against the mapping.
func (p *Problem) Validate() error {
	if p.App == nil || p.Arch == nil {
		return fmt.Errorf("replication: nil application or architecture")
	}
	if len(p.Mapping) != p.App.NumProcesses() {
		return fmt.Errorf("replication: mapping covers %d of %d processes", len(p.Mapping), p.App.NumProcesses())
	}
	for pid, nodes := range p.Replicas {
		if int(pid) < 0 || int(pid) >= p.App.NumProcesses() {
			return fmt.Errorf("replication: unknown process %d", pid)
		}
		if len(nodes) < 2 {
			return fmt.Errorf("replication: process %d has %d replicas, want at least 2", pid, len(nodes))
		}
		seen := make(map[int]bool)
		for _, j := range nodes {
			if j < 0 || j >= len(p.Arch.Nodes) {
				return fmt.Errorf("replication: process %d replica on invalid node %d", pid, j)
			}
			if seen[j] {
				return fmt.Errorf("replication: process %d has two replicas on node %d", pid, j)
			}
			seen[j] = true
		}
		if p.Mapping[pid] != nodes[0] {
			return fmt.Errorf("replication: process %d mapped to node %d but primary replica on node %d",
				pid, p.Mapping[pid], nodes[0])
		}
	}
	return nil
}

// Solution is one evaluated replication configuration.
type Solution struct {
	// Ks are the re-execution counts of the architecture nodes (covering
	// the non-replicated processes).
	Ks []int
	// Schedule is the static schedule of the expanded application (all
	// replicas placed). Process IDs of the original application keep
	// their IDs; replica clones follow.
	Schedule *sched.Schedule
	// ReplicaOf maps each process of the expanded application to the
	// original ProcID (identity for originals).
	ReplicaOf []appmodel.ProcID
	// Reliable and Schedulable are the two feasibility components.
	Reliable    bool
	Schedulable bool
	// SystemFailureProb is the per-iteration failure probability.
	SystemFailureProb float64
}

// Feasible reports whether the solution meets both requirements.
func (s *Solution) Feasible() bool { return s != nil && s.Reliable && s.Schedulable }

// Evaluate analyses and schedules the replication configuration.
func Evaluate(p Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Goal.Validate(); err != nil {
		return nil, err
	}
	maxK := p.MaxK
	if maxK <= 0 {
		maxK = sfp.DefaultMaxK
	}

	// --- Reliability ------------------------------------------------
	// Per-node probabilities over non-replicated processes.
	nodeProbs := make([][]float64, len(p.Arch.Nodes))
	for pid := 0; pid < p.App.NumProcesses(); pid++ {
		if _, ok := p.Replicas[appmodel.ProcID(pid)]; ok {
			continue
		}
		j := p.Mapping[pid]
		v := p.Arch.Version(j)
		if v == nil {
			return nil, fmt.Errorf("replication: node %d has no selected version", j)
		}
		nodeProbs[j] = append(nodeProbs[j], v.FailProb[pid])
	}
	analysis, err := sfp.NewAnalysis(nodeProbs, p.App.EffectivePeriod(), maxK)
	if err != nil {
		return nil, err
	}
	// All-replicas-fail probabilities, one per replicated process.
	var replFail []float64
	replPids := sortedPids(p.Replicas)
	for _, pid := range replPids {
		prod := 1.0
		for _, j := range p.Replicas[pid] {
			v := p.Arch.Version(j)
			if v == nil {
				return nil, fmt.Errorf("replication: node %d has no selected version", j)
			}
			prod *= v.FailProb[pid]
		}
		replFail = append(replFail, prob.Clamp01(prob.CeilP(prod)))
	}
	sysFail := func(ks []int) float64 {
		fails := make([]float64, 0, len(analysis.Nodes)+len(replFail))
		for j, n := range analysis.Nodes {
			fails = append(fails, n.FailureProb(ks[j]))
		}
		fails = append(fails, replFail...)
		return sfp.SystemFailureProb(fails)
	}
	ks := make([]int, len(p.Arch.Nodes))
	reliable := true
	for sfp.Reliability(sysFail(ks), analysis.Period, p.Goal.Tau) < p.Goal.Rho() {
		best, bestFail := -1, 0.0
		for j, n := range analysis.Nodes {
			if ks[j] >= n.MaxK() || n.FailureProb(ks[j]+1) >= n.FailureProb(ks[j]) {
				continue
			}
			ks[j]++
			f := sysFail(ks)
			ks[j]--
			if best < 0 || f < bestFail {
				best, bestFail = j, f
			}
		}
		if best < 0 {
			reliable = false // saturated (e.g. the replicas themselves too weak)
			break
		}
		ks[best]++
	}

	// --- Scheduling ---------------------------------------------------
	expApp, expMapping, replicaOf, err := Expand(p)
	if err != nil {
		return nil, err
	}
	// The platform's WCET tables are indexed by original ProcID; build a
	// view of the selected h-versions re-indexed over the expanded
	// process set so the scheduler can look clones up directly.
	expArch := ExpandedArch(p, replicaOf)
	recovery := make([]float64, expApp.NumProcesses())
	for pid := 0; pid < expApp.NumProcesses(); pid++ {
		orig := replicaOf[pid]
		if _, ok := p.Replicas[orig]; ok {
			recovery[pid] = 0 // replicas are never re-executed
			continue
		}
		v := p.Arch.Version(expMapping[pid])
		recovery[pid] = v.WCET[orig] + expApp.Procs[pid].Mu
	}
	s, err := sched.Build(sched.Input{
		App:      expApp,
		Arch:     expArch,
		Mapping:  expMapping,
		Ks:       ks,
		Bus:      p.Bus,
		Recovery: recovery,
	})
	if err != nil {
		return nil, err
	}
	return &Solution{
		Ks:                ks,
		Schedule:          s,
		ReplicaOf:         replicaOf,
		Reliable:          reliable,
		Schedulable:       s.Schedulable(expApp),
		SystemFailureProb: sysFail(ks),
	}, nil
}

// Expand clones every replicated process onto its replica nodes: the
// original keeps its ID on the primary node; clones are appended. Clones
// inherit all incoming edges, and all outgoing edges are duplicated from
// every clone so that consumers wait for the slowest replica. It returns
// the expanded application, its mapping, and the original ProcID of every
// expanded process (identity for originals).
func Expand(p Problem) (*appmodel.Application, []int, []appmodel.ProcID, error) {
	src := p.App
	exp := &appmodel.Application{
		Name:   src.Name + "+replicas",
		Period: src.Period,
	}
	mapping := make([]int, 0, src.NumProcesses())
	replicaOf := make([]appmodel.ProcID, 0, src.NumProcesses())
	graphOf := src.GraphOf()
	exp.Graphs = make([]appmodel.Graph, len(src.Graphs))
	for gi := range src.Graphs {
		exp.Graphs[gi] = appmodel.Graph{
			Name:     src.Graphs[gi].Name,
			Deadline: src.Graphs[gi].Deadline,
		}
	}
	addProc := func(orig appmodel.ProcID, name string, node int) appmodel.ProcID {
		id := appmodel.ProcID(len(exp.Procs))
		exp.Procs = append(exp.Procs, appmodel.Process{ID: id, Name: name, Mu: src.Procs[orig].Mu})
		gi := graphOf[orig]
		exp.Graphs[gi].Procs = append(exp.Graphs[gi].Procs, id)
		mapping = append(mapping, node)
		replicaOf = append(replicaOf, orig)
		return id
	}
	// Originals first, keeping IDs stable.
	for pid := 0; pid < src.NumProcesses(); pid++ {
		addProc(appmodel.ProcID(pid), src.Procs[pid].Name, p.Mapping[pid])
	}
	// Clones.
	clones := make(map[appmodel.ProcID][]appmodel.ProcID) // orig -> all instances
	for pid := 0; pid < src.NumProcesses(); pid++ {
		clones[appmodel.ProcID(pid)] = []appmodel.ProcID{appmodel.ProcID(pid)}
	}
	for _, orig := range sortedPids(p.Replicas) {
		for r, node := range p.Replicas[orig] {
			if r == 0 {
				continue // primary is the original
			}
			name := fmt.Sprintf("%s/r%d", src.Procs[orig].Name, r+1)
			id := addProc(orig, name, node)
			clones[orig] = append(clones[orig], id)
		}
	}
	// Edges: every (src instance, dst instance) pair.
	addEdge := func(name string, from, to appmodel.ProcID, size int, gi int) {
		id := appmodel.EdgeID(len(exp.Edges))
		exp.Edges = append(exp.Edges, appmodel.Edge{ID: id, Name: name, Src: from, Dst: to, Size: size})
		exp.Graphs[gi].Edges = append(exp.Graphs[gi].Edges, id)
	}
	for _, e := range src.Edges {
		gi := graphOf[e.Src]
		for si, from := range clones[e.Src] {
			for di, to := range clones[e.Dst] {
				name := e.Name
				if si > 0 || di > 0 {
					name = fmt.Sprintf("%s/%d.%d", e.Name, si, di)
				}
				addEdge(name, from, to, e.Size, gi)
			}
		}
	}
	if err := exp.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("replication: expanded application invalid: %w", err)
	}
	return exp, mapping, replicaOf, nil
}

// ExpandedArch builds a single-level architecture whose WCET and failure
// probability tables are re-indexed over the expanded process set (clones
// inherit their original's entries on every node).
func ExpandedArch(p Problem, replicaOf []appmodel.ProcID) *platform.Architecture {
	nodes := make([]*platform.Node, len(p.Arch.Nodes))
	for j := range p.Arch.Nodes {
		v := p.Arch.Version(j)
		w := make([]float64, len(replicaOf))
		fp := make([]float64, len(replicaOf))
		for pid, orig := range replicaOf {
			w[pid] = v.WCET[orig]
			fp[pid] = v.FailProb[orig]
		}
		nodes[j] = &platform.Node{
			ID:   platform.NodeID(j),
			Name: p.Arch.Nodes[j].Name,
			Versions: []platform.HVersion{{
				Level:    1,
				Cost:     v.Cost,
				WCET:     w,
				FailProb: fp,
			}},
		}
	}
	return platform.NewArchitecture(nodes)
}

// sortedPids returns the assignment's keys in ascending order for
// deterministic iteration.
func sortedPids(a Assignment) []appmodel.ProcID {
	pids := make([]appmodel.ProcID, 0, len(a))
	for pid := range a {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}
