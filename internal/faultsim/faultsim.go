// Package faultsim is the fault-injection substrate of the reproduction.
//
// The paper obtains per-process failure probabilities p_ijh "using fault
// injection tools" (GOOFI [1], FPGA-based injection [18]) on real
// hardened hardware. Neither the tools nor the hardware are available, so
// this package supplies the closest synthetic equivalent, in two parts:
//
//   - DeriveFailProb computes p_ijh from the raw transient (soft) error
//     rate per clock cycle of the fabrication technology, the process
//     length in cycles, and the hardening level — mirroring how the
//     paper's experiments parameterize technologies by SER (10^-10,
//     10^-11, 10^-12 per cycle) and how its examples reduce p by two
//     orders of magnitude per hardening level (Fig. 3: 4·10^-2 → 4·10^-4 →
//     4·10^-6).
//
//   - Campaign runs a Monte-Carlo fault-injection campaign against the
//     re-execution recovery scheme, producing an empirical system failure
//     probability that cross-validates the analytic SFP analysis of
//     package sfp (experiment E11 of DESIGN.md).
package faultsim

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultReductionPerLevel is the factor by which one hardening level
// divides the process failure probability. Two orders of magnitude per
// level matches the paper's Fig. 3 h-versions.
const DefaultReductionPerLevel = 100.0

// DefaultCyclesPerMs converts worst-case execution time to clock cycles at
// a nominal 1 GHz embedded clock: 10^6 cycles per millisecond.
const DefaultCyclesPerMs = 1e6

// DeriveFailProb returns the failure probability of a single execution of
// a process with the given WCET (milliseconds, at the hardening level in
// question), on a technology with serPerCycle transient faults per clock
// cycle at the minimum hardening level, at hardening level (1-based).
// reductionPerLevel divides the probability once per level above 1; pass
// DefaultReductionPerLevel for the paper-calibrated value, and
// DefaultCyclesPerMs for cyclesPerMs unless modelling a different clock.
//
// The result is clamped to [0, 0.5] — a process failing more than half the
// time is outside the model's regime and would never meet any reliability
// goal anyway.
func DeriveFailProb(wcetMs, cyclesPerMs, serPerCycle float64, level int, reductionPerLevel float64) float64 {
	if wcetMs <= 0 || cyclesPerMs <= 0 || serPerCycle <= 0 {
		return 0
	}
	if level < 1 {
		level = 1
	}
	if reductionPerLevel <= 1 {
		reductionPerLevel = DefaultReductionPerLevel
	}
	p := serPerCycle * wcetMs * cyclesPerMs / math.Pow(reductionPerLevel, float64(level-1))
	if p > 0.5 {
		p = 0.5
	}
	return p
}

// Campaign is a Monte-Carlo fault-injection campaign over one application
// iteration repeated Iterations times. NodeProbs[j] lists the failure
// probabilities of the processes mapped on node j; Ks[j] is the number of
// re-executions node j provides.
type Campaign struct {
	NodeProbs  [][]float64
	Ks         []int
	Iterations int
	// Seed makes the campaign reproducible.
	Seed int64
}

// Result summarizes a campaign.
type Result struct {
	Iterations int
	// Failures counts iterations in which some node exhausted its
	// re-execution budget.
	Failures int
	// NodeFailures[j] counts iterations in which node j exhausted its
	// budget (several nodes can fail in the same iteration).
	NodeFailures []int
}

// FailureProb returns the empirical per-iteration system failure
// probability.
func (r *Result) FailureProb() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.Failures) / float64(r.Iterations)
}

// StdErr returns the standard error of FailureProb, for confidence
// intervals in validation tests.
func (r *Result) StdErr() float64 {
	if r.Iterations == 0 {
		return 0
	}
	p := r.FailureProb()
	return math.Sqrt(p * (1 - p) / float64(r.Iterations))
}

// Run executes the campaign. Within one iteration, every execution of
// every process on node j fails independently with its probability; each
// failed execution consumes one of the node's k_j re-executions, and the
// node fails when a process execution fails with the budget exhausted —
// exactly the fault model of the SFP analysis (at most k_j faults per node
// per iteration are tolerated).
func (c *Campaign) Run() (*Result, error) {
	if c.Iterations <= 0 {
		return nil, fmt.Errorf("faultsim: non-positive iteration count %d", c.Iterations)
	}
	if len(c.Ks) != len(c.NodeProbs) {
		return nil, fmt.Errorf("faultsim: %d budgets for %d nodes", len(c.Ks), len(c.NodeProbs))
	}
	for j, ps := range c.NodeProbs {
		if c.Ks[j] < 0 {
			return nil, fmt.Errorf("faultsim: negative budget on node %d", j)
		}
		for _, p := range ps {
			if !(p >= 0 && p < 1) {
				return nil, fmt.Errorf("faultsim: probability %v outside [0,1) on node %d", p, j)
			}
		}
	}
	rng := rand.New(rand.NewSource(c.Seed))
	res := &Result{
		Iterations:   c.Iterations,
		NodeFailures: make([]int, len(c.NodeProbs)),
	}
	for it := 0; it < c.Iterations; it++ {
		systemFailed := false
		for j, ps := range c.NodeProbs {
			budget := c.Ks[j]
			nodeFailed := false
			for _, p := range ps {
				// Execute until success or budget exhaustion.
				for rng.Float64() < p {
					if budget == 0 {
						nodeFailed = true
						break
					}
					budget--
				}
				if nodeFailed {
					break
				}
			}
			if nodeFailed {
				res.NodeFailures[j]++
				systemFailed = true
			}
		}
		if systemFailed {
			res.Failures++
		}
	}
	return res, nil
}
