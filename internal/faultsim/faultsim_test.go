package faultsim

import (
	"math"
	"testing"

	"repro/internal/sfp"
)

func TestDeriveFailProbFig3Shape(t *testing.T) {
	// A 80 ms process at SER 5e-10/cycle and 1 GHz gives p = 4e-2 at the
	// minimum hardening level — the Fig. 3 value — and two orders of
	// magnitude less per level.
	p1 := DeriveFailProb(80, DefaultCyclesPerMs, 5e-10, 1, DefaultReductionPerLevel)
	if math.Abs(p1-4e-2) > 1e-12 {
		t.Errorf("level 1 p = %v, want 4e-2", p1)
	}
	p2 := DeriveFailProb(80, DefaultCyclesPerMs, 5e-10, 2, DefaultReductionPerLevel)
	if math.Abs(p2-4e-4) > 1e-12 {
		t.Errorf("level 2 p = %v, want 4e-4", p2)
	}
	p3 := DeriveFailProb(80, DefaultCyclesPerMs, 5e-10, 3, DefaultReductionPerLevel)
	if math.Abs(p3-4e-6) > 1e-12 {
		t.Errorf("level 3 p = %v, want 4e-6", p3)
	}
}

func TestDeriveFailProbEdgeCases(t *testing.T) {
	if DeriveFailProb(0, 1e6, 1e-10, 1, 100) != 0 {
		t.Error("zero WCET should give zero probability")
	}
	if DeriveFailProb(10, 1e6, 0, 1, 100) != 0 {
		t.Error("zero SER should give zero probability")
	}
	// Absurd SER clamps at 0.5.
	if p := DeriveFailProb(1e6, 1e6, 1, 1, 100); p != 0.5 {
		t.Errorf("clamped p = %v, want 0.5", p)
	}
	// Level below 1 behaves as level 1, bad reduction falls back to the
	// default.
	a := DeriveFailProb(10, 1e6, 1e-10, 0, 0)
	b := DeriveFailProb(10, 1e6, 1e-10, 1, DefaultReductionPerLevel)
	if a != b {
		t.Errorf("level/reduction fallback mismatch: %v vs %v", a, b)
	}
	// Probability decreases monotonically with level.
	prev := DeriveFailProb(10, 1e6, 1e-10, 1, 100)
	for lvl := 2; lvl <= 5; lvl++ {
		cur := DeriveFailProb(10, 1e6, 1e-10, lvl, 100)
		if cur >= prev {
			t.Errorf("p did not decrease at level %d", lvl)
		}
		prev = cur
	}
}

func TestCampaignValidation(t *testing.T) {
	bad := []Campaign{
		{NodeProbs: [][]float64{{0.1}}, Ks: []int{0}, Iterations: 0},
		{NodeProbs: [][]float64{{0.1}}, Ks: nil, Iterations: 10},
		{NodeProbs: [][]float64{{0.1}}, Ks: []int{-1}, Iterations: 10},
		{NodeProbs: [][]float64{{1.5}}, Ks: []int{0}, Iterations: 10},
	}
	for i := range bad {
		if _, err := bad[i].Run(); err == nil {
			t.Errorf("campaign %d should be rejected", i)
		}
	}
}

func TestCampaignZeroProbNeverFails(t *testing.T) {
	c := Campaign{NodeProbs: [][]float64{{0, 0}, {0}}, Ks: []int{0, 0}, Iterations: 1000, Seed: 1}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Errorf("%d failures with zero fault probability", res.Failures)
	}
	if res.FailureProb() != 0 || res.StdErr() != 0 {
		t.Error("statistics should be zero")
	}
}

func TestCampaignCertainFailureWithoutBudget(t *testing.T) {
	// p close to 1 and k = 0: essentially every iteration fails.
	c := Campaign{NodeProbs: [][]float64{{0.999}}, Ks: []int{0}, Iterations: 2000, Seed: 2}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FailureProb() < 0.99 {
		t.Errorf("failure prob = %v, want ≈0.999", res.FailureProb())
	}
	if res.NodeFailures[0] != res.Failures {
		t.Error("single-node campaign: node failures must equal system failures")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	c := Campaign{NodeProbs: [][]float64{{0.05, 0.03}}, Ks: []int{1}, Iterations: 5000, Seed: 7}
	r1, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Failures != r2.Failures {
		t.Errorf("same seed, different results: %d vs %d", r1.Failures, r2.Failures)
	}
}

// TestSFPMatchesMonteCarlo cross-validates the analytic SFP analysis
// (experiment E11): for several configurations with measurable failure
// probabilities, the Monte-Carlo estimate must fall within 5 standard
// errors of the analytic value (which is additionally allowed its
// pessimistic rounding margin).
func TestSFPMatchesMonteCarlo(t *testing.T) {
	cases := []struct {
		name  string
		probs [][]float64
		ks    []int
	}{
		{"one node k=0", [][]float64{{0.02, 0.05}}, []int{0}},
		{"one node k=1", [][]float64{{0.05, 0.08}}, []int{1}},
		{"one node k=2", [][]float64{{0.1, 0.07, 0.04}}, []int{2}},
		{"two nodes", [][]float64{{0.04, 0.03}, {0.06}}, []int{1, 1}},
		{"asymmetric budgets", [][]float64{{0.1}, {0.02, 0.02}}, []int{2, 0}},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fails := make([]float64, len(c.probs))
			for j, ps := range c.probs {
				n, err := sfp.NewNode(ps, 8)
				if err != nil {
					t.Fatal(err)
				}
				fails[j] = n.FailureProb(c.ks[j])
			}
			analytic := sfp.SystemFailureProb(fails)

			camp := Campaign{NodeProbs: c.probs, Ks: c.ks, Iterations: 400000, Seed: int64(100 + i)}
			res, err := camp.Run()
			if err != nil {
				t.Fatal(err)
			}
			mc := res.FailureProb()
			tol := 5*res.StdErr() + 1e-9
			if math.Abs(mc-analytic) > tol {
				t.Errorf("analytic %v vs Monte-Carlo %v (tol %v)", analytic, mc, tol)
			}
		})
	}
}
