// Package repro is a from-scratch Go reproduction of
//
//	V. Izosimov, I. Polian, P. Pop, P. Eles, Z. Peng.
//	"Analysis and Optimization of Fault-Tolerant Embedded Systems with
//	Hardened Processors", DATE 2009, pp. 682–687.
//
// The public API lives in package repro/ftes; the implementation is split
// across repro/internal/* (see DESIGN.md for the system inventory). The
// benchmarks in this package regenerate the paper's tables and figures —
// one benchmark per experiment of the index in DESIGN.md — and
// cmd/paperbench prints them as full tables.
package repro
