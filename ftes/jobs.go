package ftes

// This file exports the job orchestration layer: the content-addressed
// scheduler behind cmd/paperbench and cmd/ftesd, for embedding the same
// run/sweep machinery (fair-share queueing, dedup, journal-backed crash
// resume) in other programs.

import (
	"context"

	"repro/internal/jobs"
)

// Job orchestration.
type (
	// JobSpec is the content of a job — everything that determines its
	// result. Identical specs share one run.
	JobSpec = jobs.Spec
	// JobScheduler runs jobs from a priority + fair-share queue on a
	// bounded worker pool, with optional journal-backed durability.
	JobScheduler = jobs.Scheduler
	// JobSchedulerOptions configures NewJobScheduler.
	JobSchedulerOptions = jobs.Options
	// JobSubmitOptions carry tenancy, priority, timeout and observability
	// for one submission (none of it perturbs the job's fingerprint).
	JobSubmitOptions = jobs.SubmitOptions
	// JobHandle is a submitter's reference to a (possibly shared) job.
	JobHandle = jobs.Handle
	// JobInfo is a point-in-time snapshot of one job.
	JobInfo = jobs.Status
	// JobArtifacts are a job's result files by name.
	JobArtifacts = jobs.Artifacts
	// JobInstruments bundles a job's observability hooks.
	JobInstruments = jobs.Instruments
	// ShardedJobHandle is the coordinator's reference to a sharded sweep:
	// per-shard jobs fanned out over the queue plus the merge that
	// reassembles the byte-identical table when the last worker finishes.
	ShardedJobHandle = jobs.ShardedHandle
)

// Job kinds and artifact names.
const (
	// JobKindFigure regenerates one paperbench figure.
	JobKindFigure = jobs.KindFigure
	// JobKindDesign runs one design optimization over a specio document.
	JobKindDesign = jobs.KindDesign
	// JobArtifactTable is a figure job's rendered table.
	JobArtifactTable = jobs.ArtifactTable
	// JobArtifactResultText is a design job's human-readable summary.
	JobArtifactResultText = jobs.ArtifactResultText
	// JobArtifactResultJSON is a design job's machine-readable result.
	JobArtifactResultJSON = jobs.ArtifactResultJSON
)

// NewJobScheduler builds a scheduler (restoring durable state when
// Options.Dir is set) and starts its worker pool. Stop it with Close.
func NewJobScheduler(o JobSchedulerOptions) (*JobScheduler, error) { return jobs.New(o) }

// SubmitJob enqueues the spec on s — or joins the existing job with the
// same fingerprint — and returns a handle on it.
func SubmitJob(s *JobScheduler, spec JobSpec, o JobSubmitOptions) (*JobHandle, error) {
	return s.Submit(spec, o)
}

// JobStatus snapshots the job with the given id.
func JobStatus(s *JobScheduler, id string) (JobInfo, bool) {
	h, ok := s.Get(id)
	if !ok {
		return JobInfo{}, false
	}
	return h.Status(), true
}

// WaitJob blocks until the job finishes (or ctx cancels) and returns its
// artifacts and error.
func WaitJob(ctx context.Context, h *JobHandle) (JobArtifacts, error) { return h.Wait(ctx) }

// ShardableFigure reports whether fig can run as a sharded sweep (its
// rows are all journaled, so a merge can reassemble the table without
// computing anything): 6a, 6b, 6c, 6d and runtime.
func ShardableFigure(fig string) bool { return jobs.ShardableFigure(fig) }

// SubmitShardedJob fans a shardable figure sweep out over the given
// number of shards — one content-addressed job per slice, sharing a shard
// directory under the scheduler's state dir — and merges the per-shard
// journals into the final table when the last worker finishes. The
// merged artifact is byte-identical to a single-process run of the spec.
func SubmitShardedJob(s *JobScheduler, spec JobSpec, shards int, o JobSubmitOptions) (*ShardedJobHandle, error) {
	return s.SubmitSharded(spec, shards, o)
}

// MergeShardedJob reassembles a finished sharded sweep from its shard
// directory without computing any rows; an incomplete or damaged shard is
// a loud error naming the workers to rerun. Passing JobMergePartial
// instead degrades: missing rows render as "!" cells and the
// JobArtifactIncomplete report names every gap and its owning shard.
func MergeShardedJob(ctx context.Context, spec JobSpec, dir string, inst JobInstruments, opts ...JobMergeOpt) (JobArtifacts, error) {
	return jobs.MergeShards(ctx, spec, dir, inst, opts...)
}

// JobMergeOpt tunes MergeShardedJob.
type JobMergeOpt = jobs.MergeOpt

// JobMergePartial switches MergeShardedJob from strict to degraded mode.
const JobMergePartial = jobs.Partial

// JobArtifactIncomplete is a degraded merge's machine-readable gap
// report (which rows are missing and which shard owns each).
const JobArtifactIncomplete = jobs.ArtifactIncomplete

// RetryJob un-quarantines a job on s: the same spec re-enqueues with a
// fresh retry-budget window while its attempt history stays monotonic.
func RetryJob(s *JobScheduler, id string) (*JobHandle, error) { return s.Retry(id) }
