package ftes

// This file exports the extensions built on top of the paper's core
// contribution: checkpointing and active replication (the other software
// fault-tolerance policies of the authors' companion work), the WCET
// analysis substrate, and the visualization helpers.

import (
	"io"

	"repro/internal/appmodel"
	"repro/internal/checkpoint"
	"repro/internal/dot"
	"repro/internal/execsim"
	"repro/internal/gantt"
	"repro/internal/multirate"
	"repro/internal/policyopt"
	"repro/internal/replication"
	"repro/internal/wcetan"
)

// Checkpointing (recovery by re-executing one segment instead of the
// whole process).
type (
	// CheckpointOverheads are the χ (save) and α (detection) overheads.
	CheckpointOverheads = checkpoint.Overheads
	// CheckpointPlan holds per-process segment counts and the derived
	// scheduler overrides.
	CheckpointPlan = checkpoint.Plan
	// CheckpointSolution is one evaluated checkpointing configuration.
	CheckpointSolution = checkpoint.Solution
)

// OptimalSegments returns the segment count minimizing the worst-case
// execution time under k faults (closed form n⁰ = √(k·t/(χ+α))).
func OptimalSegments(t float64, k int, o CheckpointOverheads, mu float64, maxN int) int {
	return checkpoint.OptimalSegments(t, k, o, mu, maxN)
}

// EvaluateCheckpointing analyses and schedules a mapped application under
// checkpointed recovery with shared slack.
func EvaluateCheckpointing(app *Application, ar *Architecture, mapping []int, goal Goal, o CheckpointOverheads, bus Bus, maxSegments int) (*CheckpointSolution, error) {
	return checkpoint.Evaluate(app, ar, mapping, goal, o, bus, maxSegments)
}

// Active replication (a process succeeds if any replica succeeds).
type (
	// ReplicaAssignment maps replicated processes to their replica nodes.
	ReplicaAssignment = replication.Assignment
	// ReplicationProblem bundles a replication-aware evaluation.
	ReplicationProblem = replication.Problem
	// ReplicationSolution is one evaluated replication configuration.
	ReplicationSolution = replication.Solution
)

// EvaluateReplication analyses and schedules a replication configuration.
func EvaluateReplication(p ReplicationProblem) (*ReplicationSolution, error) {
	return replication.Evaluate(p)
}

// WCET analysis substrate (structured programs → worst-case execution
// times and failure probabilities).
type (
	// WCETNode is a structured program fragment.
	WCETNode = wcetan.Node
	// WCETProgram is a structured program with a worst-case cycle count.
	WCETProgram = wcetan.Program
	// WCETBlock is a straight-line basic block.
	WCETBlock = wcetan.Block
	// WCETSeq is sequential composition.
	WCETSeq = wcetan.Seq
	// WCETBranch is a multi-way conditional (worst alternative counts).
	WCETBranch = wcetan.Branch
	// WCETLoop is a loop with a flow-annotated bound.
	WCETLoop = wcetan.Loop
	// WCETNodeSpec parameterizes BuildWCETNode.
	WCETNodeSpec = wcetan.NodeSpec
)

// BuildWCETNode analyses the programs and assembles a platform node with
// per-level WCET and failure-probability tables.
func BuildWCETNode(spec WCETNodeSpec, programs []WCETProgram) (*Node, error) {
	return wcetan.BuildNode(spec, programs)
}

// Visualization.
type (
	// GanttChart renders a schedule as an ASCII Gantt chart.
	GanttChart = gantt.Chart
	// DotOptions controls Graphviz export.
	DotOptions = dot.Options
)

// WriteDot emits the application's task graphs as a Graphviz DOT digraph,
// optionally decorated with a mapping.
func WriteDot(w io.Writer, app *appmodel.Application, opts dot.Options) error {
	return dot.Write(w, app, opts)
}

// Execution simulation (discrete-event replay under fault injection).
type (
	// SimInput configures one simulated iteration.
	SimInput = execsim.Input
	// SimResult is the outcome of one simulated iteration.
	SimResult = execsim.Result
	// SimCampaign runs many iterations with random fault patterns.
	SimCampaign = execsim.Campaign
	// SimCampaignResult aggregates a campaign.
	SimCampaignResult = execsim.CampaignResult
)

// Simulate replays one application iteration under a concrete fault
// pattern.
func Simulate(in SimInput) (*SimResult, error) { return execsim.Run(in) }

// Policy assignment (per-process choice among re-execution,
// checkpointing and replication).
type (
	// FTPolicy identifies a fault-tolerance mechanism.
	FTPolicy = policyopt.Policy
	// PolicyProblem bundles the policy-assignment inputs.
	PolicyProblem = policyopt.Problem
	// PolicyAssignment is a complete per-process assignment.
	PolicyAssignment = policyopt.Assignment
	// PolicySolution is one evaluated assignment.
	PolicySolution = policyopt.Solution
)

// Fault-tolerance policies.
const (
	// PolicyReExecution is the paper's whole-process re-execution.
	PolicyReExecution = policyopt.ReExecution
	// PolicyCheckpointing re-executes only the failed segment.
	PolicyCheckpointing = policyopt.Checkpointing
	// PolicyReplication runs the process on several nodes.
	PolicyReplication = policyopt.Replication
)

// EvaluatePolicies analyses and schedules one policy assignment.
func EvaluatePolicies(p PolicyProblem, a *PolicyAssignment) (*PolicySolution, error) {
	return policyopt.Evaluate(p, a)
}

// OptimizePolicies greedily optimizes the policy assignment for
// worst-case schedule length.
func OptimizePolicies(p PolicyProblem) (*PolicySolution, error) {
	return policyopt.Optimize(p)
}

// Multi-rate applications (graphs with individual periods, analysed and
// scheduled over the hyperperiod).
type (
	// MultiRateSpec is an application plus one period per graph.
	MultiRateSpec = multirate.Spec
	// MultiRateUnrolled is the hyperperiod job set.
	MultiRateUnrolled = multirate.Unrolled
	// MultiRateSolution is one evaluated multi-rate deployment.
	MultiRateSolution = multirate.Solution
)

// UnrollMultiRate expands a multi-rate application over one hyperperiod.
func UnrollMultiRate(s *MultiRateSpec) (*MultiRateUnrolled, error) { return multirate.Unroll(s) }

// EvaluateMultiRate analyses and schedules a multi-rate deployment.
func EvaluateMultiRate(s *MultiRateSpec, ar *Architecture, mapping []int, goal Goal, bus Bus, maxK int) (*MultiRateSolution, error) {
	return multirate.Evaluate(s, ar, mapping, goal, bus, maxK)
}
