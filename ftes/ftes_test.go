package ftes_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/ftes"
)

// TestQuickstartFlow exercises the public facade end to end: build an
// application and platform through the exported API, run the design
// strategy, inspect the result.
func TestQuickstartFlow(t *testing.T) {
	b := ftes.NewBuilder("demo")
	b.Graph("G", 450)
	p1 := b.Process("P1", 15)
	p2 := b.Process("P2", 15)
	b.Edge("m1", p1, p2, 8)
	b.Period(450)
	app, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	pl := &ftes.Platform{
		Nodes: []ftes.Node{{
			ID:   0,
			Name: "N1",
			Versions: []ftes.HVersion{
				{Level: 1, Cost: 10, WCET: []float64{80, 60}, FailProb: []float64{4e-2, 3e-2}},
				{Level: 2, Cost: 20, WCET: []float64{100, 75}, FailProb: []float64{4e-4, 3e-4}},
			},
		}},
		Bus: ftes.BusSpec{SlotLen: 5},
	}

	res, err := ftes.Run(app, pl, ftes.Options{
		Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("demo should be feasible")
	}
	if res.Cost != 20 {
		t.Errorf("cost = %v, want 20 (hardened version needed)", res.Cost)
	}
}

// TestFacadeAnalysis checks the exported reliability analysis against the
// Appendix A.2 value.
func TestFacadeAnalysis(t *testing.T) {
	n, err := ftes.NewReliabilityNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n.PrZero() != 0.99997500015 {
		t.Errorf("PrZero = %.11f", n.PrZero())
	}
	union := ftes.SystemFailureProb([]float64{n.FailureProb(1), n.FailureProb(1)})
	rel := ftes.Reliability(union, 360, ftes.Hour)
	if rel < 1-1e-5 {
		t.Errorf("reliability %v should meet 1-1e-5", rel)
	}
}

// TestFacadeGenerator checks the exported synthetic generator.
func TestFacadeGenerator(t *testing.T) {
	inst, err := ftes.Generate(ftes.DefaultGenConfig(1, 20, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	if inst.App.NumProcesses() != 20 {
		t.Errorf("generated %d processes", inst.App.NumProcesses())
	}
}

// TestFacadeCampaign checks the exported Monte-Carlo campaign.
func TestFacadeCampaign(t *testing.T) {
	c := ftes.Campaign{NodeProbs: [][]float64{{0.1}}, Ks: []int{1}, Iterations: 10000, Seed: 1}
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: p² = 0.01.
	if res.FailureProb() < 0.005 || res.FailureProb() > 0.02 {
		t.Errorf("campaign failure prob %v, want ≈0.01", res.FailureProb())
	}
}

// TestFacadeScheduleAndRedundancy drives the scheduler and redundancy
// optimizer through the facade.
func TestFacadeScheduleAndRedundancy(t *testing.T) {
	b := ftes.NewBuilder("sched")
	b.Graph("G", 400)
	p1 := b.Process("A", 10)
	p2 := b.Process("B", 10)
	b.Edge("e", p1, p2, 4)
	app := b.MustBuild()

	node := ftes.Node{
		ID:   0,
		Name: "N",
		Versions: []ftes.HVersion{
			{Level: 1, Cost: 5, WCET: []float64{50, 60}, FailProb: []float64{1e-4, 1e-4}},
		},
	}
	ar := ftes.NewArchitecture([]*ftes.Node{&node})
	s, err := ftes.BuildSchedule(ftes.ScheduleInput{
		App: app, Arch: ar, Mapping: []int{0, 0}, Ks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 110 fault-free + 1×(60+10) shared slack.
	if s.Length != 180 {
		t.Errorf("schedule length = %v, want 180", s.Length)
	}

	ks, ok, err := ftes.ReExecutionOpt(app, ar, []int{0, 0}, []int{1}, ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}, ftes.DefaultMaxK)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(ks) != 1 {
		t.Errorf("ReExecutionOpt: ok=%v ks=%v", ok, ks)
	}
}

// TestFacadeRunContext exercises the cancellation surface of the facade:
// RunContext matches Run when the context stays live, and a canceled
// context yields the typed ErrCanceled.
func TestFacadeRunContext(t *testing.T) {
	inst, err := ftes.Generate(ftes.DefaultGenConfig(1, 20, 1e-11, 25))
	if err != nil {
		t.Fatal(err)
	}
	opts := ftes.Options{Goal: inst.Goal, Strategy: ftes.OPT}
	want, err := ftes.Run(inst.App, inst.Platform, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ftes.RunContext(context.Background(), inst.App, inst.Platform, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || got.Feasible != want.Feasible {
		t.Errorf("RunContext diverged from Run: cost %v vs %v", got.Cost, want.Cost)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ftes.RunContext(ctx, inst.App, inst.Platform, opts)
	if !errors.Is(err, ftes.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res == nil {
		t.Fatal("canceled run returned no partial result")
	}
}

// TestFacadeJournal round-trips a row through the exported journal API.
func TestFacadeJournal(t *testing.T) {
	fp, err := ftes.JournalFingerprint(map[string]int{"apps": 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := ftes.OpenJournal(path, fp, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("row-1", map[string]float64{"OPT": 90}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, err = ftes.OpenJournal(path, fp, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var got map[string]float64
	if !j.Lookup("row-1", &got) || got["OPT"] != 90 {
		t.Errorf("restored row = %v", got)
	}
}
