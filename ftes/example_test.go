package ftes_test

import (
	"fmt"

	"repro/ftes"
)

// ExampleNewReliabilityNode reproduces the paper's Appendix A.2 numbers
// for one node of the Fig. 4a architecture.
func ExampleNewReliabilityNode() {
	// P1 (p = 1.2e-5) and P2 (p = 1.3e-5) on N1^2.
	node, err := ftes.NewReliabilityNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Pr(0)   = %.11f\n", node.PrZero())
	pr1, _ := node.PrExactly(1)
	fmt.Printf("Pr(1)   = %.11f\n", pr1)
	fmt.Printf("Pr(f>1) = %.1e\n", node.FailureProb(1))

	union := ftes.SystemFailureProb([]float64{node.FailureProb(1), node.FailureProb(1)})
	fmt.Printf("system reliability over one hour: %.11f\n", ftes.Reliability(union, 360, ftes.Hour))
	// Output:
	// Pr(0)   = 0.99997500015
	// Pr(1)   = 0.00002499937
	// Pr(f>1) = 4.8e-10
	// system reliability over one hour: 0.99999040004
}

// ExampleRun optimizes the paper's Fig. 3 example: the middle h-version
// with two re-executions wins at half the cost of maximum hardening.
func ExampleRun() {
	b := ftes.NewBuilder("fig3")
	b.Graph("G", 360)
	b.Process("P1", 20) // μ = 20 ms
	b.Period(360)
	app, err := b.Build()
	if err != nil {
		panic(err)
	}
	pl := &ftes.Platform{
		Nodes: []ftes.Node{{
			ID:   0,
			Name: "N1",
			Versions: []ftes.HVersion{
				{Level: 1, Cost: 10, WCET: []float64{80}, FailProb: []float64{4e-2}},
				{Level: 2, Cost: 20, WCET: []float64{100}, FailProb: []float64{4e-4}},
				{Level: 3, Cost: 40, WCET: []float64{160}, FailProb: []float64{4e-6}},
			},
		}},
		Bus: ftes.BusSpec{SlotLen: 5},
	}
	res, err := ftes.Run(app, pl, ftes.Options{Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}})
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible=%v cost=%g level=%d k=%d worst-case=%g ms\n",
		res.Feasible, res.Cost, res.Arch.Levels[0], res.Ks[0], res.Schedule.Length)
	// Output:
	// feasible=true cost=20 level=2 k=2 worst-case=340 ms
}

// ExampleOptimalSegments shows the checkpointing optimum of the TVLSI
// companion: n⁰ = √(k·t/(χ+α)).
func ExampleOptimalSegments() {
	n := ftes.OptimalSegments(100, 2, ftes.CheckpointOverheads{Chi: 1, Alpha: 1}, 5, 32)
	fmt.Println(n)
	// Output:
	// 10
}
