package ftes

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// drainThenAccept answers 503 + Retry-After for the first n requests,
// then accepts.
func drainThenAccept(n int64) (*atomic.Int64, http.HandlerFunc) {
	var calls atomic.Int64
	return &calls, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining"}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j1","state":"queued"}`))
	}
}

// TestClientRetriesDraining: the client waits out 503 + Retry-After and
// succeeds once the daemon accepts again.
func TestClientRetriesDraining(t *testing.T) {
	calls, h := drainThenAccept(2)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL + "/", MaxAttempts: 3}
	start := time.Now()
	res, err := c.Submit(context.Background(), map[string]any{"kind": "figure", "fig": "6a"})
	if err != nil {
		t.Fatalf("Submit through drain: %v", err)
	}
	if res.ID != "j1" || res.State != "queued" {
		t.Errorf("result = %+v", res)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("client slept %v, want >= 2s (two Retry-After: 1 waits)", elapsed)
	}
}

// TestClientGivesUp: a daemon that never stops draining exhausts
// MaxAttempts and the error names the last refusal.
func TestClientGivesUp(t *testing.T) {
	calls, h := drainThenAccept(1 << 30)
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, MaxAttempts: 2}
	_, err := c.Submit(context.Background(), map[string]any{"kind": "figure"})
	if err == nil {
		t.Fatal("Submit against a permanently draining daemon succeeded")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("server saw %d requests, want MaxAttempts=2", got)
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("error %v does not carry the 503", err)
	}
}

// TestClientNoRetryOnClientError: non-503 errors are final — the
// daemon's answer, not a transient condition.
func TestClientNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown figure"}`))
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, MaxAttempts: 5}
	_, err := c.Submit(context.Background(), map[string]any{"kind": "figure", "fig": "6z"})
	if err == nil {
		t.Fatal("bad request reported success")
	}
	var ae *apiError
	if !errors.As(err, &ae) || ae.Status != http.StatusBadRequest || ae.Msg != "unknown figure" {
		t.Errorf("error = %v, want the daemon's 400 verbatim", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry on 4xx)", got)
	}
}

// TestClientContextBoundsSleep: a canceled context interrupts the
// Retry-After sleep instead of serving it out.
func TestClientContextBoundsSleep(t *testing.T) {
	_, h := drainThenAccept(1 << 30)
	srv := httptest.NewServer(h)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	c := &Client{BaseURL: srv.URL, MaxAttempts: 10}
	start := time.Now()
	_, err := c.Job(ctx, "j1")
	if err == nil {
		t.Fatal("Job with expiring context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("client held the sleep %v past its context", elapsed)
	}
}

