// Package ftes (fault-tolerant embedded systems) is the public API of the
// library: a design-optimization framework for hard real-time embedded
// systems that tolerates transient faults by combining selective hardware
// hardening with software process re-execution, reproducing
//
//	V. Izosimov, I. Polian, P. Pop, P. Eles, Z. Peng.
//	"Analysis and Optimization of Fault-Tolerant Embedded Systems with
//	Hardened Processors", DATE 2009.
//
// # Overview
//
// An application is a set of acyclic task graphs (build one with
// NewBuilder). It runs on a bus-based platform whose computation nodes are
// each available in several hardened versions (h-versions) trading cost
// and speed for reliability. Given a reliability goal ρ = 1 − γ per hour
// and hard deadlines, Run selects the architecture, hardening levels,
// process mapping, per-node re-execution counts and static schedule with
// the lowest total cost:
//
//	app := ... // ftes.NewBuilder
//	pl  := ... // ftes.Platform with nodes and h-versions
//	res, err := ftes.Run(app, pl, ftes.Options{
//		Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
//	})
//
// The underlying pieces are exported too: the system failure probability
// analysis of the paper's Appendix A (NewReliabilityAnalysis), the static
// scheduler with shared recovery slack (BuildSchedule), the
// hardening/re-execution trade-off (RedundancyOpt), the tabu-search
// mapping optimizer (OptimizeMapping), the synthetic workload generator
// of the experimental evaluation (Generate), and a Monte-Carlo
// fault-injection campaign to cross-validate the analysis (Campaign).
package ftes

import (
	"context"
	"io"
	"log/slog"
	"time"

	"repro/internal/appmodel"
	"repro/internal/core"
	"repro/internal/evalcache"
	"repro/internal/evalengine"
	"repro/internal/faultsim"
	"repro/internal/mapping"
	"repro/internal/obs"
	"repro/internal/obs/obshttp"
	"repro/internal/platform"
	"repro/internal/redundancy"
	"repro/internal/runctl"
	"repro/internal/runstate"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/taskgen"
	"repro/internal/ttp"
)

// Hour is one hour in milliseconds — the reliability-goal time unit τ used
// throughout the paper.
const Hour = 3.6e6

// Application model.
type (
	// Application is a set of acyclic task graphs with a period.
	Application = appmodel.Application
	// Process is one non-preemptable node of a task graph.
	Process = appmodel.Process
	// Edge is a data dependency carrying a message.
	Edge = appmodel.Edge
	// Graph is one task graph with a hard deadline.
	Graph = appmodel.Graph
	// ProcID identifies a process.
	ProcID = appmodel.ProcID
	// EdgeID identifies an edge.
	EdgeID = appmodel.EdgeID
	// Builder incrementally constructs a valid Application.
	Builder = appmodel.Builder
)

// NewBuilder returns a Builder for an application with the given name.
func NewBuilder(name string) *Builder { return appmodel.NewBuilder(name) }

// Platform model.
type (
	// Platform is the set of available computation nodes plus the bus.
	Platform = platform.Platform
	// Node is a computation node type with its h-versions.
	Node = platform.Node
	// HVersion is one hardened version of a node.
	HVersion = platform.HVersion
	// BusSpec characterizes the TDMA bus.
	BusSpec = platform.BusSpec
	// Architecture is a selected node set with hardening levels.
	Architecture = platform.Architecture
	// NodeID identifies a node type.
	NodeID = platform.NodeID
)

// NewArchitecture returns an architecture over the given nodes at minimum
// hardening.
func NewArchitecture(nodes []*Node) *Architecture { return platform.NewArchitecture(nodes) }

// Reliability analysis (the paper's Appendix A).
type (
	// Goal is the reliability goal ρ = 1 − γ per time unit τ.
	Goal = sfp.Goal
	// ReliabilityAnalysis evaluates the system failure probability of a
	// deployment for varying re-execution counts.
	ReliabilityAnalysis = sfp.Analysis
	// ReliabilityNode is the per-node part of the analysis.
	ReliabilityNode = sfp.Node
)

// DefaultMaxK caps the re-executions the analysis considers per node.
const DefaultMaxK = sfp.DefaultMaxK

// NewReliabilityAnalysis builds the SFP analysis from per-node process
// failure probability sets (nodeProbs[j] lists p_ijh for the processes
// mapped on node j).
func NewReliabilityAnalysis(nodeProbs [][]float64, period float64, maxK int) (*ReliabilityAnalysis, error) {
	return sfp.NewAnalysis(nodeProbs, period, maxK)
}

// NewReliabilityNode builds the analysis for a single node.
func NewReliabilityNode(probs []float64, maxK int) (*ReliabilityNode, error) {
	return sfp.NewNode(probs, maxK)
}

// SystemFailureProb combines per-node failure probabilities into the
// system failure probability per application iteration (formula 5).
func SystemFailureProb(nodeFail []float64) float64 { return sfp.SystemFailureProb(nodeFail) }

// Reliability raises the per-iteration survival probability to the τ/T
// iterations of the time unit (formula 6).
func Reliability(sysFail, period, tau float64) float64 { return sfp.Reliability(sysFail, period, tau) }

// Scheduling.
type (
	// Schedule is a static schedule with worst-case completion times.
	Schedule = sched.Schedule
	// ScheduleInput bundles the scheduler inputs.
	ScheduleInput = sched.Input
	// SlackModel selects the recovery-slack accounting.
	SlackModel = sched.SlackModel
	// Bus abstracts the message medium for the scheduler.
	Bus = sched.Bus
	// TDMABus is the TTP-like time-triggered bus.
	TDMABus = ttp.Bus
	// InstantBus delivers messages with zero latency.
	InstantBus = ttp.InstantBus
)

// Slack models.
const (
	// SlackShared is the paper's shared recovery slack.
	SlackShared = sched.SlackShared
	// SlackPerProcess is the non-shared, more pessimistic baseline.
	SlackPerProcess = sched.SlackPerProcess
)

// BuildSchedule runs the list scheduler with recovery slack.
func BuildSchedule(in ScheduleInput) (*Schedule, error) { return sched.Build(in) }

// NewTDMABus returns a TDMA bus with one slot per node per round.
func NewTDMABus(numNodes int, slotLen float64) *TDMABus { return ttp.NewBus(numNodes, slotLen) }

// Redundancy optimization (Section 6.3).
type (
	// RedundancyProblem bundles the inputs of the hardening/re-execution
	// trade-off.
	RedundancyProblem = redundancy.Problem
	// RedundancySolution is one evaluated configuration.
	RedundancySolution = redundancy.Solution
)

// RedundancyOpt runs the hardening/re-execution trade-off for a fixed
// mapping.
func RedundancyOpt(p RedundancyProblem) (*RedundancySolution, error) {
	return redundancy.RedundancyOpt(p)
}

// ReExecutionOpt assigns per-node re-execution counts for fixed hardening
// levels, greedily guided by the largest reliability increase.
func ReExecutionOpt(app *Application, ar *Architecture, procMapping []int, levels []int, goal Goal, maxK int) ([]int, bool, error) {
	return redundancy.ReExecutionOpt(app, ar, procMapping, levels, goal, maxK)
}

// Mapping optimization (Section 6.2).
type (
	// MappingParams tunes the tabu search.
	MappingParams = mapping.Params
	// MappingResult is the best mapping found with its solution.
	MappingResult = mapping.Result
	// MappingCostFunction selects the mapping objective.
	MappingCostFunction = mapping.CostFunction
)

// Mapping cost functions.
const (
	// MinimizeScheduleLength optimizes the worst-case schedule length.
	MinimizeScheduleLength = mapping.ScheduleLength
	// MinimizeArchitectureCost optimizes the architecture cost.
	MinimizeArchitectureCost = mapping.ArchitectureCost
)

// Evaluation engine.
type (
	// Evaluator is the stateful, memoizing evaluation engine shared by the
	// mapping and design-strategy layers. One Evaluator serves one
	// goroutine.
	Evaluator = evalengine.Evaluator
	// ConcurrentEvaluator is the multi-goroutine evaluation engine: N
	// worker Evaluators over shared caches.
	ConcurrentEvaluator = evalengine.Concurrent
	// EvaluatorStats are the engine's instrumentation counters.
	EvaluatorStats = evalengine.Stats
)

// NewEvaluator returns an evaluation engine bound to the given problem
// (the problem's Mapping field is ignored; mappings are supplied per
// call).
func NewEvaluator(p RedundancyProblem) *Evaluator { return evalengine.New(p) }

// OptimizeMapping runs the tabu-search mapping optimization through a
// fresh evaluation engine. To reuse caches across calls, construct an
// Evaluator with NewEvaluator and call mapping.Optimize via OptimizeMappingWith.
func OptimizeMapping(p RedundancyProblem, initial []int, cf MappingCostFunction, params MappingParams) (*MappingResult, error) {
	return mapping.Optimize(evalengine.New(p), initial, cf, params)
}

// OptimizeMappingWith runs the tabu-search mapping optimization through
// the given evaluation engine, reusing whatever its caches already hold.
func OptimizeMappingWith(ev *Evaluator, initial []int, cf MappingCostFunction, params MappingParams) (*MappingResult, error) {
	return mapping.Optimize(ev, initial, cf, params)
}

// NewConcurrentEvaluator returns an evaluation engine with the given
// number of workers bound to p; workers ≤ 1 behaves like NewEvaluator.
func NewConcurrentEvaluator(p RedundancyProblem, workers int) *ConcurrentEvaluator {
	return evalengine.NewConcurrent(p, workers)
}

// OptimizeMappingConcurrent runs the tabu-search mapping optimization
// with the neighborhood evaluated on the engine's workers. The result is
// identical to the sequential OptimizeMappingWith on the same problem.
func OptimizeMappingConcurrent(ce *ConcurrentEvaluator, initial []int, cf MappingCostFunction, params MappingParams) (*MappingResult, error) {
	return mapping.OptimizeConcurrent(ce, initial, cf, params)
}

// OptimizeMappingContext is OptimizeMappingWith under a context: the
// search consults ctx between tabu iterations and, once it is done,
// returns the best mapping found so far together with an error wrapping
// ErrCanceled. The partial result is deterministic for a given
// cancellation point.
func OptimizeMappingContext(ctx context.Context, ev *Evaluator, initial []int, cf MappingCostFunction, params MappingParams) (*MappingResult, error) {
	return mapping.OptimizeContext(ctx, ev, initial, cf, params)
}

// OptimizeMappingConcurrentContext is OptimizeMappingConcurrent under a
// context, with the same partial-result contract as
// OptimizeMappingContext.
func OptimizeMappingConcurrentContext(ctx context.Context, ce *ConcurrentEvaluator, initial []int, cf MappingCostFunction, params MappingParams) (*MappingResult, error) {
	return mapping.OptimizeConcurrentContext(ctx, ce, initial, cf, params)
}

// Design strategy (Fig. 5).
type (
	// Options configures a design run.
	Options = core.Options
	// Result is the outcome of a design run.
	Result = core.Result
	// Strategy selects OPT, MIN or MAX.
	Strategy = core.Strategy
	// EvalCache is the disk-backed, content-addressed store of memoized
	// evaluation work. Install one via Options.EvalCache (or
	// JobSchedulerOptions.EvalCache) to warm-start runs across
	// processes; it can only short-cut to values the engine would
	// recompute identically, never change a result.
	EvalCache = evalcache.Cache
)

// OpenEvalCache opens (creating if needed) the evaluation-cache
// directory. A cache survives crashes and concurrent writers: entries
// are verified by digest on load and any damage degrades to a cold
// start.
func OpenEvalCache(dir string) (*EvalCache, error) { return evalcache.Open(dir) }

// Strategies.
const (
	// OPT is the paper's full design optimization.
	OPT = core.OPT
	// MIN uses minimum hardening with software-only fault tolerance.
	MIN = core.MIN
	// MAX uses maximum hardening everywhere.
	MAX = core.MAX
)

// Run executes a design strategy and returns the cheapest feasible
// implementation.
func Run(app *Application, pl *Platform, opts Options) (*Result, error) {
	return core.Run(app, pl, opts)
}

// RunContext is Run under a context. Cancellation is cooperative: the
// run consults ctx between candidate architectures (never inside the
// bit-identical evaluation arithmetic) and, once ctx is done, returns
// the best complete solution found so far together with an error
// wrapping ErrCanceled; the interrupted candidate is discarded whole.
// A panic in a worker goroutine surfaces as a *PanicError instead of
// crashing the process.
func RunContext(ctx context.Context, app *Application, pl *Platform, opts Options) (*Result, error) {
	return core.RunContext(ctx, app, pl, opts)
}

// Run control: cancellation and crash-safe resumable state.
type (
	// PanicError is a panic recovered from a worker goroutine, carrying
	// the panic value and stack.
	PanicError = runctl.PanicError
	// Journal is the crash-safe append-only record of completed
	// experiment rows that drives paperbench -resume.
	Journal = runstate.Journal
)

// ErrCanceled is wrapped by every error a canceled run returns; test
// with errors.Is. The underlying context error (context.Canceled or
// context.DeadlineExceeded) is wrapped too.
var ErrCanceled = runctl.ErrCanceled

// OpenJournal opens (and with resume, replays) a crash-safe journal at
// path. fingerprint pins the workload identity — build one with
// JournalFingerprint; resuming with a different fingerprint fails
// rather than mixing incompatible rows.
func OpenJournal(path, fingerprint string, resume bool) (*Journal, error) {
	return runstate.Open(path, fingerprint, resume)
}

// JournalFingerprint derives a stable hex fingerprint from any
// JSON-marshalable description of the workload configuration.
func JournalFingerprint(v any) (string, error) { return runstate.Fingerprint(v) }

// Observability (internal/obs): hierarchical spans exportable as Chrome
// trace_event JSON, a registry of counters, gauges and duration
// histograms, a live-progress publisher, and a structured logger.
// Install a Tracer via Options.Tracer (or a parent span via
// Options.ParentSpan), a Metrics registry via Options.Metrics, a
// Progress publisher via Options.Progress and a Logger via Options.Log;
// nil disables each at no cost. The span taxonomy and live-introspection
// endpoints are documented in DESIGN.md.
type (
	// Tracer records hierarchical spans; export with WriteChromeTrace.
	Tracer = obs.Tracer
	// Span is one timed region of a trace.
	Span = obs.Span
	// Metrics is a registry of named counters, gauges and duration
	// histograms.
	Metrics = obs.Registry
	// Progress is the concurrency-safe live-progress publisher: named
	// phases with current/total counters, best cost and a moving-rate ETA.
	Progress = obs.Progress
	// ProgressStatus is a point-in-time snapshot of every phase.
	ProgressStatus = obs.ProgressStatus
	// Logger is the nil-safe structured logger (log/slog-backed).
	Logger = obs.Logger
	// IntrospectionServer serves live state over HTTP; see
	// ServeIntrospection.
	IntrospectionServer = obshttp.Server
	// EventLog is the durable, append-only fleet lifecycle event journal;
	// obshttp streams it over /events as server-sent events.
	EventLog = obs.EventLog
	// EventScope is an EventLog view bound to one job id.
	EventScope = obs.EventScope
	// LogEvent is one recorded lifecycle event.
	LogEvent = obs.LogEvent
	// Sampler periodically snapshots a Metrics registry into a ring
	// buffer; obshttp serves the series over /timeseries.
	Sampler = obs.Sampler
	// TimeSeries is a Sampler's exported sample window.
	TimeSeries = obs.TimeSeries
	// TraceData is one process's parsed trace — the unit MergeTraces
	// stitches across processes.
	TraceData = obs.TraceData
)

// NewTracer returns an enabled tracer whose clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty, enabled metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewProgress returns an enabled, empty live-progress publisher.
func NewProgress() *Progress { return obs.NewProgress() }

// NewTextLogger returns a Logger emitting human-readable key=value lines
// at or above level to w.
func NewTextLogger(w io.Writer, level slog.Leveler) *Logger { return obs.NewTextLogger(w, level) }

// NewJSONLogger returns a Logger emitting one JSON object per record at
// or above level to w.
func NewJSONLogger(w io.Writer, level slog.Leveler) *Logger { return obs.NewJSONLogger(w, level) }

// NewEventLog returns an enabled in-memory event log (nothing persisted).
func NewEventLog() *EventLog { return obs.NewEventLog() }

// OpenEventLog opens (creating if needed) the durable event journal at
// path, replaying any events an earlier process recorded there.
func OpenEventLog(path string) (*EventLog, error) { return obs.OpenEventLog(path) }

// NewSampler returns a sampler snapshotting reg every interval into a
// ring of capacity samples (0 picks the defaults: 1s, 720 samples).
// Call Start to begin sampling and Stop when done.
func NewSampler(reg *Metrics, interval time.Duration, capacity int) *Sampler {
	return obs.NewSampler(reg, interval, capacity)
}

// ReadTraceFile parses one Chrome trace_event JSON file written by
// Tracer.WriteChromeTrace (or a worker's shard snapshot) for merging.
func ReadTraceFile(path string) (TraceData, error) { return obs.ReadTraceFile(path) }

// MergeTraces stitches per-process traces into one Chrome trace on w:
// each input gets its own process lane, span ids are renumbered globally,
// cross-process parent references resolve to real parent links, and
// timestamps align on the processes' wall clocks.
func MergeTraces(w io.Writer, traces ...TraceData) error { return obs.MergeTraces(w, traces...) }

// ServeIntrospection starts an HTTP server on addr (e.g. ":8080", or
// "127.0.0.1:0" for an ephemeral port) exposing the given instruments
// live: /metrics (Prometheus text exposition), /progress (JSON),
// /trace (Chrome trace_event JSON), /healthz, /debug/vars (expvar) and
// /debug/pprof. Any instrument may be nil. Close the returned server
// when done. For the event stream (/events) and metrics time series
// (/timeseries), use ServeFleetIntrospection.
func ServeIntrospection(addr string, tracer *Tracer, metrics *Metrics, progress *Progress) (*IntrospectionServer, error) {
	return obshttp.Serve(addr, obshttp.Options{Registry: metrics, Progress: progress, Tracer: tracer})
}

// ServeFleetIntrospection is ServeIntrospection plus the fleet surfaces:
// /events streams the event log live over server-sent events and
// /timeseries serves the sampler's metric history. events and sampler
// may each be nil, which disables the corresponding endpoint's data
// (the route still responds).
func ServeFleetIntrospection(addr string, tracer *Tracer, metrics *Metrics, progress *Progress, events *EventLog, sampler *Sampler) (*IntrospectionServer, error) {
	return obshttp.Serve(addr, obshttp.Options{
		Registry: metrics, Progress: progress, Tracer: tracer,
		Events: events, Sampler: sampler,
	})
}

// Synthetic workloads (Section 7).
type (
	// GenConfig parameterizes the synthetic generator.
	GenConfig = taskgen.Config
	// Instance is a generated application/platform/goal triple.
	Instance = taskgen.Instance
)

// DefaultGenConfig returns the paper's experimental parameterization.
func DefaultGenConfig(seed int64, n int, ser, hpdPercent float64) GenConfig {
	return taskgen.DefaultConfig(seed, n, ser, hpdPercent)
}

// Generate builds one reproducible synthetic instance.
func Generate(cfg GenConfig) (*Instance, error) { return taskgen.Generate(cfg) }

// Fault injection substrate.
type (
	// Campaign is a Monte-Carlo fault-injection campaign.
	Campaign = faultsim.Campaign
	// CampaignResult summarizes a campaign.
	CampaignResult = faultsim.Result
)

// DeriveFailProb computes a process failure probability from the raw SER
// per clock cycle, the process length and the hardening level.
func DeriveFailProb(wcetMs, cyclesPerMs, serPerCycle float64, level int, reductionPerLevel float64) float64 {
	return faultsim.DeriveFailProb(wcetMs, cyclesPerMs, serPerCycle, level, reductionPerLevel)
}
