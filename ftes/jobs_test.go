package ftes_test

import (
	"bytes"
	"context"
	"testing"

	"repro/ftes"
)

// TestJobSchedulerFacade drives a figure job end-to-end through the
// facade: submit, dedup on resubmission, status, artifact.
func TestJobSchedulerFacade(t *testing.T) {
	s, err := ftes.NewJobScheduler(ftes.JobSchedulerOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	spec := ftes.JobSpec{Kind: ftes.JobKindFigure, Fig: "6a", Apps: 2, Procs: []int{20}, Seed: 3}
	h, err := ftes.SubmitJob(s, spec, ftes.JobSubmitOptions{Tenant: "t"})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := ftes.SubmitJob(s, spec, ftes.JobSubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != h2.ID() {
		t.Errorf("identical specs got different jobs: %s vs %s", h.ID(), h2.ID())
	}
	art, err := ftes.WaitJob(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(art[ftes.JobArtifactTable], []byte("Fig. 6a")) {
		t.Errorf("table artifact:\n%s", art[ftes.JobArtifactTable])
	}
	st, ok := ftes.JobStatus(s, h.ID())
	if !ok || st.Submits != 2 {
		t.Errorf("status = %+v ok=%v, want submits 2", st, ok)
	}
}
