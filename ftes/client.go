package ftes

// This file is the Go client for a running ftesd daemon: a thin HTTP
// wrapper over the /jobs API that speaks the daemon's availability
// protocol — a draining daemon answers 503 with a Retry-After header,
// and the client honors it, sleeping (context-bounded) and retrying
// instead of surfacing a transient refusal as an error.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client talks to one ftesd daemon.
type Client struct {
	// BaseURL is the daemon's root URL, e.g. "http://127.0.0.1:8080"
	// (trailing slash tolerated).
	BaseURL string
	// HTTP is the underlying HTTP client (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds how many times a request is sent when the daemon
	// answers 503 + Retry-After (<= 0 means 3). Non-503 responses are
	// never retried: the daemon's error is the answer.
	MaxAttempts int
	// MaxRetryAfter caps how long one Retry-After header can make the
	// client sleep (0 = 30s); a daemon misconfigured with an hour-long
	// drain bound should not hang a caller that set no context deadline.
	MaxRetryAfter time.Duration
}

// SubmitResult is the daemon's acknowledgment of an accepted submission.
type SubmitResult struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Dedup  bool   `json:"dedup"`
	Shards int    `json:"shards,omitempty"`
}

// apiError is the daemon's {"error": "..."} body, surfaced verbatim.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("ftesd: %s (HTTP %d)", e.Msg, e.Status)
	}
	return fmt.Sprintf("ftesd: HTTP %d", e.Status)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	base := c.BaseURL
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return base + path
}

// do sends one request, retrying on 503 per the Retry-After header. The
// request body is re-sent from the byte slice on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	capSleep := c.MaxRetryAfter
	if capSleep <= 0 {
		capSleep = 30 * time.Second
	}
	var last error
	for a := 0; a < attempts; a++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining: honor Retry-After (bounded), then try again.
			last = decodeError(resp.StatusCode, data)
			sleep := retryAfter(resp.Header.Get("Retry-After"), capSleep)
			select {
			case <-ctx.Done():
				return fmt.Errorf("%w (last: %v)", ctx.Err(), last)
			case <-time.After(sleep):
			}
			continue
		}
		if resp.StatusCode >= 400 {
			return decodeError(resp.StatusCode, data)
		}
		if out != nil {
			return json.Unmarshal(data, out)
		}
		return nil
	}
	return fmt.Errorf("ftes: gave up after %d attempts: %w", attempts, last)
}

// retryAfter parses a Retry-After value in seconds, clamped to [1s, cap].
// (The HTTP-date form is not produced by ftesd and falls back to 1s.)
func retryAfter(v string, capSleep time.Duration) time.Duration {
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 1 {
		return time.Second
	}
	d := time.Duration(secs) * time.Second
	if d > capSleep {
		return capSleep
	}
	return d
}

func decodeError(status int, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &e)
	return &apiError{Status: status, Msg: e.Error}
}

// Submit posts a job envelope (any JSON-marshalable value — typically a
// map or the daemon's documented envelope shape) to POST /jobs. A
// draining daemon's 503 + Retry-After is waited out and retried up to
// MaxAttempts times.
func (c *Client) Submit(ctx context.Context, envelope any) (SubmitResult, error) {
	body, err := json.Marshal(envelope)
	if err != nil {
		return SubmitResult{}, err
	}
	var res SubmitResult
	err = c.do(ctx, http.MethodPost, "/jobs", body, &res)
	return res, err
}

// Job fetches one job's status from GET /jobs/{id}.
func (c *Client) Job(ctx context.Context, id string) (JobInfo, error) {
	var st JobInfo
	err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Retry un-quarantines a job via POST /jobs/{id}/retry and returns its
// refreshed status.
func (c *Client) Retry(ctx context.Context, id string) (JobInfo, error) {
	var st JobInfo
	err := c.do(ctx, http.MethodPost, "/jobs/"+id+"/retry", nil, &st)
	return st, err
}

// Artifact fetches one artifact's bytes from GET /jobs/{id}/artifacts/{name}.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	var buf []byte
	err := c.doRaw(ctx, "/jobs/"+id+"/artifacts/"+name, &buf)
	return buf, err
}

// doRaw is do for non-JSON responses (artifact bytes).
func (c *Client) doRaw(ctx context.Context, path string, out *[]byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return decodeError(resp.StatusCode, data)
	}
	*out = data
	return nil
}
