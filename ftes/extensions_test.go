package ftes_test

import (
	"strings"
	"testing"

	"repro/ftes"
)

// buildTwoProcApp builds a 2-process chain on a single 1-level node for
// facade extension tests.
func buildTwoProcApp(t *testing.T) (*ftes.Application, *ftes.Architecture) {
	t.Helper()
	b := ftes.NewBuilder("ext")
	b.Graph("G", 500)
	p1 := b.Process("A", 5)
	p2 := b.Process("B", 5)
	b.Edge("e", p1, p2, 4)
	app := b.MustBuild()
	node := ftes.Node{
		ID:   0,
		Name: "N",
		Versions: []ftes.HVersion{
			{Level: 1, Cost: 5, WCET: []float64{80, 100}, FailProb: []float64{1e-3, 1e-3}},
		},
	}
	return app, ftes.NewArchitecture([]*ftes.Node{&node})
}

func TestFacadeCheckpointing(t *testing.T) {
	app, ar := buildTwoProcApp(t)
	sol, err := ftes.EvaluateCheckpointing(app, ar, []int{0, 0},
		ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
		ftes.CheckpointOverheads{Chi: 1, Alpha: 1}, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Reliable {
		t.Fatal("should meet the goal")
	}
	// Re-execution worst case: 180 + k×105; checkpointing must be
	// shorter for the same k.
	plain := 180.0 + float64(sol.Ks[0])*105
	if sol.Schedule.Length >= plain {
		t.Errorf("checkpointing %v not below re-execution %v", sol.Schedule.Length, plain)
	}
}

func TestFacadeOptimalSegments(t *testing.T) {
	if n := ftes.OptimalSegments(100, 2, ftes.CheckpointOverheads{Chi: 1, Alpha: 1}, 5, 32); n != 10 {
		t.Errorf("n = %d, want 10", n)
	}
}

func TestFacadeReplication(t *testing.T) {
	b := ftes.NewBuilder("repl")
	b.Graph("G", 500)
	p1 := b.Process("A", 5)
	p2 := b.Process("B", 5)
	b.Edge("e", p1, p2, 4)
	app := b.MustBuild()
	mk := func(id int, name string) ftes.Node {
		return ftes.Node{
			ID:   ftes.NodeID(id),
			Name: name,
			Versions: []ftes.HVersion{
				{Level: 1, Cost: 5, WCET: []float64{80, 100}, FailProb: []float64{1e-3, 1e-3}},
			},
		}
	}
	n1, n2 := mk(0, "N1"), mk(1, "N2")
	ar := ftes.NewArchitecture([]*ftes.Node{&n1, &n2})
	sol, err := ftes.EvaluateReplication(ftes.ReplicationProblem{
		App: app, Arch: ar, Mapping: []int{0, 0},
		Replicas: ftes.ReplicaAssignment{0: {0, 1}},
		Goal:     ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.ReplicaOf) != 3 {
		t.Errorf("expanded to %d processes, want 3", len(sol.ReplicaOf))
	}
}

func TestFacadeWCET(t *testing.T) {
	progs := []ftes.WCETProgram{
		{Name: "A", Root: ftes.WCETSeq{
			ftes.WCETBlock{Name: "init", N: 100000},
			ftes.WCETLoop{Body: ftes.WCETBlock{N: 5000}, Bound: 50, TestCycles: 10},
		}},
		{Name: "B", Root: ftes.WCETBranch{
			TestCycles:   100,
			Alternatives: []ftes.WCETNode{ftes.WCETBlock{N: 300000}, ftes.WCETBlock{N: 100000}},
		}},
	}
	node, err := ftes.BuildWCETNode(ftes.WCETNodeSpec{
		ID: 0, Name: "N", ClockMHz: 100, BaseCost: 4, Levels: 3,
		HPDPercent: 25, SERPerCycle: 1e-11,
	}, progs)
	if err != nil {
		t.Fatal(err)
	}
	if len(node.Versions) != 3 {
		t.Fatalf("%d versions", len(node.Versions))
	}
}

func TestFacadeVisualization(t *testing.T) {
	app, ar := buildTwoProcApp(t)
	s, err := ftes.BuildSchedule(ftes.ScheduleInput{
		App: app, Arch: ar, Mapping: []int{0, 0}, Ks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	chart := &ftes.GanttChart{App: app, Arch: ar, Mapping: []int{0, 0}, Schedule: s, Deadline: 500}
	var sb strings.Builder
	if err := chart.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "N^1") {
		t.Errorf("chart:\n%s", sb.String())
	}
	sb.Reset()
	if err := ftes.WriteDot(&sb, app, ftes.DotOptions{Arch: ar, Mapping: []int{0, 0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Errorf("dot:\n%s", sb.String())
	}
}

// TestFacadeMappingAndRedundancy drives the mapping and redundancy
// wrappers.
func TestFacadeMappingAndRedundancy(t *testing.T) {
	app, ar := buildTwoProcApp(t)
	p := ftes.RedundancyProblem{
		App:  app,
		Arch: ar,
		Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
	}
	res, err := ftes.OptimizeMapping(p, nil, ftes.MinimizeScheduleLength, ftes.MappingParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mapping) != 2 {
		t.Fatalf("mapping %v", res.Mapping)
	}
	p.Mapping = res.Mapping
	sol, err := ftes.RedundancyOpt(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || sol.Ks == nil {
		t.Fatal("no redundancy solution")
	}
}

// TestFacadeSimulate drives the execution simulator through the facade.
func TestFacadeSimulate(t *testing.T) {
	app, ar := buildTwoProcApp(t)
	s, err := ftes.BuildSchedule(ftes.ScheduleInput{
		App: app, Arch: ar, Mapping: []int{0, 0}, Ks: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftes.Simulate(ftes.SimInput{
		App: app, Arch: ar, Mapping: []int{0, 0}, Ks: []int{1},
		Static: s, Faults: []int{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One fault on A (t=80, μ=5): 80+5+80 = 165, then B (100): 265.
	if res.Makespan != 265 {
		t.Errorf("makespan %v, want 265", res.Makespan)
	}
}

// TestFacadeMultiRate drives the hyperperiod evaluation through the
// facade.
func TestFacadeMultiRate(t *testing.T) {
	b := ftes.NewBuilder("mr")
	b.Graph("fast", 40)
	b.Process("F", 1)
	b.Graph("slow", 90)
	b.Process("S", 1)
	app := b.MustBuild()
	node := ftes.Node{
		ID:   0,
		Name: "N",
		Versions: []ftes.HVersion{
			{Level: 1, Cost: 1, WCET: []float64{10, 20}, FailProb: []float64{1e-6, 1e-6}},
		},
	}
	ar := ftes.NewArchitecture([]*ftes.Node{&node})
	spec := &ftes.MultiRateSpec{App: app, Periods: []float64{50, 100}}
	u, err := ftes.UnrollMultiRate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if u.Hyperperiod != 100 || u.App.NumProcesses() != 3 {
		t.Fatalf("unrolled %+v", u)
	}
	sol, err := ftes.EvaluateMultiRate(spec, ar, []int{0, 0}, ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Errorf("two-rate toy should be feasible: %+v", sol)
	}
}

// TestFacadeConcurrentMapping: the concurrent mapping optimizer through
// the facade returns exactly the sequential result.
func TestFacadeConcurrentMapping(t *testing.T) {
	app, _ := buildTwoProcApp(t)
	n0 := ftes.Node{
		ID:   0,
		Name: "N0",
		Versions: []ftes.HVersion{
			{Level: 1, Cost: 5, WCET: []float64{80, 100}, FailProb: []float64{1e-3, 1e-3}},
		},
	}
	n1 := ftes.Node{
		ID:   1,
		Name: "N1",
		Versions: []ftes.HVersion{
			{Level: 1, Cost: 8, WCET: []float64{60, 75}, FailProb: []float64{5e-4, 5e-4}},
		},
	}
	p := ftes.RedundancyProblem{
		App:  app,
		Arch: ftes.NewArchitecture([]*ftes.Node{&n0, &n1}),
		Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
	}
	want, err := ftes.OptimizeMapping(p, nil, ftes.MinimizeScheduleLength, ftes.MappingParams{})
	if err != nil {
		t.Fatal(err)
	}
	ce := ftes.NewConcurrentEvaluator(p, 3)
	got, err := ftes.OptimizeMappingConcurrent(ce, nil, ftes.MinimizeScheduleLength, ftes.MappingParams{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Mapping) != len(want.Mapping) {
		t.Fatalf("mapping sizes %d vs %d", len(got.Mapping), len(want.Mapping))
	}
	for i := range got.Mapping {
		if got.Mapping[i] != want.Mapping[i] {
			t.Fatalf("mapping %v, want %v", got.Mapping, want.Mapping)
		}
	}
	if got.Evaluations != want.Evaluations {
		t.Errorf("evaluations %d, want %d", got.Evaluations, want.Evaluations)
	}
	if got.Solution.Schedule.Length != want.Solution.Schedule.Length {
		t.Errorf("SL %v, want %v", got.Solution.Schedule.Length, want.Solution.Schedule.Length)
	}
	if ce.NumWorkers() != 3 {
		t.Errorf("NumWorkers() = %d, want 3", ce.NumWorkers())
	}
}
