// Motivational examples: walks through the paper's Section 5 — the
// hardware-vs-software recovery trade-off of Fig. 3 and the architecture
// alternatives of Fig. 4 — computing every number from the library.
//
//	go run ./examples/motivational
package main

import (
	"fmt"
	"log"

	"repro/ftes"
	"repro/internal/paper"
	"repro/internal/redundancy"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func main() {
	fig3()
	fig4()
}

// fig3 reproduces Fig. 3: one process on three h-versions of N1 with
// deadline 360 ms and ρ = 1 − 1e-5 per hour. Hardening reduces the number
// of re-executions needed from 6 (deadline miss) to 2 or 1 (both finish
// at exactly 340 ms), and the cheaper middle version wins.
func fig3() {
	fmt.Println("=== Fig. 3: hardware recovery vs software recovery ===")
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	goal := sfp.Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour}

	for _, v := range pl.Nodes[0].Versions {
		ar := ftes.NewArchitecture([]*ftes.Node{&pl.Nodes[0]})
		ar.Levels[0] = v.Level
		ks, ok, err := redundancy.ReExecutionOpt(app, ar, []int{0}, []int{v.Level}, goal, sfp.DefaultMaxK)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			log.Fatalf("level %d cannot reach the goal", v.Level)
		}
		s, err := sched.Build(sched.Input{App: app, Arch: ar, Mapping: []int{0}, Ks: ks})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "meets D=360"
		if !s.Schedulable(app) {
			verdict = "MISSES D=360"
		}
		fmt.Printf("  N1^%d: p=%.0e, t=%3.0f ms, cost %2.0f -> k=%d, worst-case %3.0f ms (%s)\n",
			v.Level, v.FailProb[0], v.WCET[0], v.Cost, ks[0], s.Length, verdict)
	}

	res, err := ftes.Run(app, pl, ftes.Options{Goal: goal})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  chosen: %s (the paper: \"the architecture with N1^2 should be chosen\")\n\n", res.Arch)
}

// fig4 reproduces Fig. 4: the architecture alternatives for the Fig. 1
// application.
func fig4() {
	fmt.Println("=== Fig. 4: architecture selection for the Fig. 1 application ===")
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}

	alt := func(label string, nodes []int, mapping []int) {
		var ns []*ftes.Node
		for _, i := range nodes {
			ns = append(ns, &pl.Nodes[i])
		}
		p := redundancy.Problem{
			App:     app,
			Arch:    ftes.NewArchitecture(ns),
			Mapping: mapping,
			Goal:    goal,
			Bus:     ttp.NewBus(len(ns), pl.Bus.SlotLen),
		}
		sol, err := redundancy.RedundancyOpt(p)
		if err != nil {
			log.Fatal(err)
		}
		if sol.Feasible() {
			fmt.Printf("  %s: feasible, levels %v, k=%v, cost %g, worst-case %.0f ms\n",
				label, sol.Levels, sol.Ks, sol.Cost, sol.Schedule.Length)
		} else {
			fmt.Printf("  %s: infeasible at every hardening level (discarded)\n", label)
		}
	}
	alt("(a) P1,P2 on N1; P3,P4 on N2", []int{0, 1}, []int{0, 0, 1, 1})
	alt("(b,d) everything on N1     ", []int{0}, []int{0, 0, 0, 0})
	alt("(c,e) everything on N2     ", []int{1}, []int{0, 0, 0, 0})

	res, err := ftes.Run(app, pl, ftes.Options{Goal: goal})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  full design strategy picks: %s (k=%v), worst-case %.0f ms\n",
		res.Arch, res.Ks, res.Schedule.Length)
	fmt.Println("  (the paper's hand-picked two-node solution costs 72; the tabu search")
	fmt.Println("   finds an even cheaper hardening/re-execution mix under our bus timing)")
}
