// Fault-tolerance policy comparison: evaluates the same mapped
// application under the paper's re-execution recovery, under the
// checkpointing extension, and under active replication, and prints the
// worst-case schedules side by side. This is the trade-off space of the
// authors' companion work (TVLSI 2009) built on top of this paper's
// analysis.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"
	"os"

	"repro/ftes"
	"repro/internal/checkpoint"
	"repro/internal/gantt"
	"repro/internal/paper"
	"repro/internal/policyopt"
	"repro/internal/redundancy"
	"repro/internal/replication"
	"repro/internal/sfp"
	"repro/internal/ttp"
)

func main() {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	ar := ftes.NewArchitecture([]*ftes.Node{&pl.Nodes[0], &pl.Nodes[1]})
	ar.Levels = []int{2, 2}
	mapping := []int{0, 0, 1, 1} // the Fig. 4a split

	fmt.Println("Fig. 1 application on N1^2 + N2^2, deadline 360 ms, rho = 1 - 1e-5/hour")
	fmt.Println()

	// --- Re-execution (the paper) ------------------------------------
	reexec, err := redundancy.Evaluate(redundancy.Problem{
		App: app, Arch: ar, Mapping: mapping, Goal: goal,
		Bus: ttp.NewBus(2, pl.Bus.SlotLen),
	}, ar.Levels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-execution:   k=%v, worst case %.0f ms, feasible=%v\n",
		reexec.Ks, reexec.Schedule.Length, reexec.Feasible())

	// --- Checkpointing (χ = α = 1 ms) ---------------------------------
	cp, err := checkpoint.Evaluate(app, ar, mapping, goal,
		checkpoint.Overheads{Chi: 1, Alpha: 1}, ttp.NewBus(2, pl.Bus.SlotLen), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointing:  k=%v, segments=%v, worst case %.0f ms, feasible=%v\n",
		cp.Ks, cp.Plan.Segments, cp.Schedule.Length, cp.Feasible())

	// --- Active replication of the critical producer P2 ---------------
	repl, err := replication.Evaluate(replication.Problem{
		App: app, Arch: ar, Mapping: mapping,
		Replicas: replication.Assignment{1: {0, 1}}, // P2 on both nodes
		Goal:     goal,
		Bus:      ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replication:    k=%v (P2 duplicated), worst case %.0f ms, feasible=%v\n",
		repl.Ks, repl.Schedule.Length, repl.Feasible())

	// --- Optimized per-process assignment ------------------------------
	opt, err := policyopt.Optimize(policyopt.Problem{
		App:       app,
		Arch:      ar,
		Mapping:   mapping,
		Goal:      goal,
		Overheads: checkpoint.Overheads{Chi: 1, Alpha: 1},
		Bus:       ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy opt:     %v, worst case %.0f ms, feasible=%v\n",
		opt.Assignment.Policies, opt.Schedule.Length, opt.Feasible())

	fmt.Println()
	fmt.Println("re-execution schedule (dots are shared recovery slack):")
	chart := &gantt.Chart{
		App:      app,
		Arch:     ar,
		Mapping:  mapping,
		Schedule: reexec.Schedule,
		Deadline: paper.Fig1Deadline,
	}
	if err := chart.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
