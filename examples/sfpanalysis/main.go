// SFP analysis walkthrough: recomputes the paper's Appendix A.2 example
// step by step with the library's pessimistic arithmetic, then
// cross-validates the analytic numbers with a Monte-Carlo fault-injection
// campaign on an up-scaled configuration.
//
//	go run ./examples/sfpanalysis
package main

import (
	"fmt"
	"log"

	"repro/ftes"
)

func main() {
	appendixA2()
	monteCarlo()
}

func appendixA2() {
	fmt.Println("=== Appendix A.2: the Fig. 4a architecture ===")
	// P1 and P2 on N1^2, P3 and P4 on N2^2; identical probability pairs.
	n1, err := ftes.NewReliabilityNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		log.Fatal(err)
	}
	n2, err := ftes.NewReliabilityNode([]float64{1.2e-5, 1.3e-5}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(0; N1^2) = %.11f\n", n1.PrZero())

	// Without re-execution the goal is missed.
	union0 := ftes.SystemFailureProb([]float64{n1.FailureProb(0), n2.FailureProb(0)})
	rel0 := ftes.Reliability(union0, 360, ftes.Hour)
	fmt.Printf("k = (0,0): system failure/iteration %.6g, reliability %.11f -> goal 1-1e-5 MISSED\n", union0, rel0)

	// With one re-execution per node the goal is met.
	pr1, err := n1.PrExactly(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pr(1; N1^2) = %.11f\n", pr1)
	fmt.Printf("Pr(f>1; N1^2) = %.6g\n", n1.FailureProb(1))
	union1 := ftes.SystemFailureProb([]float64{n1.FailureProb(1), n2.FailureProb(1)})
	rel1 := ftes.Reliability(union1, 360, ftes.Hour)
	fmt.Printf("k = (1,1): system failure/iteration %.6g, reliability %.11f -> goal MET\n\n", union1, rel1)
}

func monteCarlo() {
	fmt.Println("=== Monte-Carlo cross-validation ===")
	// Failure probabilities large enough to measure in 10^6 iterations.
	probs := [][]float64{{0.02, 0.03}, {0.04}}
	ks := []int{1, 1}

	fails := make([]float64, len(probs))
	for j, ps := range probs {
		n, err := ftes.NewReliabilityNode(ps, 8)
		if err != nil {
			log.Fatal(err)
		}
		fails[j] = n.FailureProb(ks[j])
	}
	analytic := ftes.SystemFailureProb(fails)

	campaign := ftes.Campaign{NodeProbs: probs, Ks: ks, Iterations: 1_000_000, Seed: 42}
	res, err := campaign.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic system failure probability:    %.6g\n", analytic)
	fmt.Printf("Monte-Carlo estimate (10^6 iterations): %.6g (std err %.2g)\n",
		res.FailureProb(), res.StdErr())
	fmt.Println("the pessimistic analytic value upper-bounds the measurement within noise")
}
