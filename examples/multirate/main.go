// Multi-rate: a two-rate system — a fast 20 ms fuel-control loop and a
// slow 60 ms thermal-management chain — unrolled over the 60 ms
// hyperperiod, analysed and scheduled with release times. The SFP
// analysis counts every job of the hyperperiod (the fast loop executes
// three times as often, so it dominates the failure budget).
//
//	go run ./examples/multirate
package main

import (
	"fmt"
	"log"

	"repro/ftes"
)

func main() {
	b := ftes.NewBuilder("engine-controller")
	b.Graph("fuel-loop", 18)
	sense := b.Process("SenseLambda", 0.2)
	ctl := b.Process("FuelCtl", 0.2)
	inj := b.Process("Inject", 0.2)
	b.Edge("f1", sense, ctl, 4)
	b.Edge("f2", ctl, inj, 4)
	b.Graph("thermal", 50)
	temp := b.Process("ReadTemps", 0.3)
	model := b.Process("ThermalModel", 0.3)
	fan := b.Process("FanCtl", 0.3)
	b.Edge("t1", temp, model, 4)
	b.Edge("t2", model, fan, 4)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	spec := &ftes.MultiRateSpec{App: app, Periods: []float64{20, 60}}

	mk := func(id int, name string, scale float64) ftes.Node {
		return ftes.Node{
			ID:   ftes.NodeID(id),
			Name: name,
			Versions: []ftes.HVersion{{
				Level: 1, Cost: 6,
				WCET:     []float64{2 * scale, 3 * scale, 2 * scale, 4 * scale, 8 * scale, 3 * scale},
				FailProb: []float64{2e-5, 3e-5, 2e-5, 4e-5, 8e-5, 3e-5},
			}},
		}
	}
	n0, n1 := mk(0, "ECU-A", 1), mk(1, "ECU-B", 1.2)
	ar := ftes.NewArchitecture([]*ftes.Node{&n0, &n1})

	sol, err := ftes.EvaluateMultiRate(spec, ar, []int{0, 0, 0, 1, 1, 1},
		ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}, ftes.NewTDMABus(2, 0.25), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hyperperiod: %.0f ms, %d jobs in %d job graphs\n",
		sol.Unrolled.Hyperperiod, sol.Unrolled.App.NumProcesses(), len(sol.Unrolled.App.Graphs))
	fmt.Printf("re-execution budgets per hyperperiod: %v\n", sol.Ks)
	fmt.Printf("feasible: %v (reliable %v, schedulable %v)\n", sol.Feasible(), sol.Reliable, sol.Schedulable)
	fmt.Println("\njob schedule (release → fault-free window, worst case):")
	for pid, p := range sol.Unrolled.App.Procs {
		fmt.Printf("  %-14s rel %5.1f  [%6.2f, %6.2f]  worst %6.2f\n",
			p.Name, sol.Unrolled.Release[pid],
			sol.Schedule.Start[pid], sol.Schedule.Finish[pid], sol.Schedule.WorstFinish[pid])
	}
}
