// WCET flow: builds the platform tables from first principles — structured
// programs analysed by the WCET substrate, failure probabilities derived
// from the technology's raw soft error rate — and runs the design
// optimization on the result. This mirrors the paper's toolchain, where
// WCETs come from static analysis tools and failure probabilities from
// fault-injection campaigns.
//
//	go run ./examples/wcetflow
package main

import (
	"fmt"
	"log"

	"repro/ftes"
)

func main() {
	// Four small control programs. Cycle counts are worst case per basic
	// block; loop bounds come from flow annotations.
	programs := []ftes.WCETProgram{
		{Name: "SampleInputs", Root: ftes.WCETSeq{
			ftes.WCETBlock{Name: "setup", N: 200_000},
			ftes.WCETLoop{ // poll 16 channels
				Bound:      16,
				TestCycles: 50,
				Body:       ftes.WCETBlock{Name: "readChannel", N: 180_000},
			},
		}},
		{Name: "EstimateState", Root: ftes.WCETSeq{
			ftes.WCETBlock{Name: "loadModel", N: 400_000},
			ftes.WCETLoop{ // 8 Kalman iterations
				Bound:      8,
				TestCycles: 100,
				Body: ftes.WCETSeq{
					ftes.WCETBlock{Name: "predict", N: 350_000},
					ftes.WCETBranch{TestCycles: 500, Alternatives: []ftes.WCETNode{
						ftes.WCETBlock{Name: "update", N: 450_000},
						ftes.WCETBlock{Name: "coast", N: 60_000},
					}},
				},
			},
		}},
		{Name: "ControlLaw", Root: ftes.WCETSeq{
			ftes.WCETBlock{Name: "pid", N: 1_500_000},
			ftes.WCETBranch{TestCycles: 800, Alternatives: []ftes.WCETNode{
				ftes.WCETBlock{Name: "saturate", N: 300_000},
				ftes.WCETBlock{Name: "nominal", N: 250_000},
			}},
		}},
		{Name: "DriveOutputs", Root: ftes.WCETLoop{
			Bound:      8,
			TestCycles: 60,
			Body:       ftes.WCETBlock{Name: "writeActuator", N: 260_000},
		}},
	}

	// Two candidate ECUs: a fast 400 MHz part and a cheaper 300 MHz one,
	// both in three hardened versions on a 1e-10 faults/cycle technology.
	fast, err := ftes.BuildWCETNode(ftes.WCETNodeSpec{
		ID: 0, Name: "ECU-A", ClockMHz: 400, BaseCost: 12, Levels: 3,
		HPDPercent: 25, SERPerCycle: 1e-10,
	}, programs)
	if err != nil {
		log.Fatal(err)
	}
	slow, err := ftes.BuildWCETNode(ftes.WCETNodeSpec{
		ID: 1, Name: "ECU-B", ClockMHz: 300, BaseCost: 8, Levels: 3,
		HPDPercent: 25, SERPerCycle: 1e-10,
	}, programs)
	if err != nil {
		log.Fatal(err)
	}
	slow.ID = 1

	fmt.Println("analysed WCETs on ECU-A (unhardened):")
	for i, p := range programs {
		fmt.Printf("  %-14s %6.2f ms (p = %.2e)\n", p.Name,
			fast.Versions[0].WCET[i], fast.Versions[0].FailProb[i])
	}

	// The pipeline SampleInputs → EstimateState → ControlLaw →
	// DriveOutputs with a 60 ms deadline.
	b := ftes.NewBuilder("wcet-flow")
	b.Graph("loop", 60)
	var prev ftes.ProcID
	for i, p := range programs {
		mu := fast.Versions[0].WCET[i] * 0.05
		id := b.Process(p.Name, mu)
		if i > 0 {
			b.Edge(fmt.Sprintf("m%d", i), prev, id, 16)
		}
		prev = id
	}
	b.Period(60)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	pl := &ftes.Platform{Nodes: []ftes.Node{*fast, *slow}, Bus: ftes.BusSpec{SlotLen: 0.25}}
	res, err := ftes.Run(app, pl, ftes.Options{Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		fmt.Println("\nno feasible implementation within the 60 ms deadline")
		return
	}
	fmt.Printf("\ncheapest implementation: %s, k=%v, worst case %.2f ms (D=60 ms)\n",
		res.Arch, res.Ks, res.Schedule.Length)
}
