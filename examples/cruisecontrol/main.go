// Cruise controller: the paper's real-life case study (Section 7). A
// 32-process cruise controller on three automotive modules (ETM, ABS,
// TCM) with a 300 ms deadline and reliability goal ρ = 1 − 1.2e-5 per
// hour. MIN (software-only fault tolerance) cannot meet the deadline; MAX
// (maximum hardening everywhere) can, but the OPT trade-off is much
// cheaper.
//
//	go run ./examples/cruisecontrol
package main

import (
	"fmt"
	"log"
	"os"

	"repro/ftes"
	"repro/internal/cc"
)

func main() {
	inst, err := cc.Instance()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cruise controller: %d processes, deadline %g ms, rho = 1 - %g per hour\n",
		inst.App.NumProcesses(), inst.App.Graphs[0].Deadline, inst.Goal.Gamma)
	fmt.Printf("modules: ")
	for i, n := range inst.Platform.Nodes {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s (%d h-versions)", n.Name, len(n.Versions))
	}
	fmt.Println()
	fmt.Println()

	var maxCost, optCost float64
	for _, s := range []ftes.Strategy{ftes.MIN, ftes.MAX, ftes.OPT} {
		res, err := ftes.Run(inst.App, inst.Platform, ftes.Options{Goal: inst.Goal, Strategy: s})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Feasible {
			fmt.Printf("%-3s: infeasible — cannot meet deadline and reliability goal\n", s)
			continue
		}
		fmt.Printf("%-3s: cost %3.0f, worst-case schedule %.1f ms, hardening levels ", s, res.Cost, res.Schedule.Length)
		for j, n := range res.Arch.Nodes {
			if j > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%s=%d(k=%d)", n.Name, res.Arch.Levels[j], res.Ks[j])
		}
		fmt.Println()
		switch s {
		case ftes.MAX:
			maxCost = res.Cost
		case ftes.OPT:
			optCost = res.Cost
		}
	}
	if maxCost > 0 && optCost > 0 {
		fmt.Printf("\nOPT is %.0f%% cheaper than MAX (the paper reports 66%%)\n",
			100*(maxCost-optCost)/maxCost)
	}

	// Show the OPT schedule as a Gantt chart (dots = recovery slack).
	opt, err := ftes.Run(inst.App, inst.Platform, ftes.Options{Goal: inst.Goal, Strategy: ftes.OPT})
	if err != nil {
		log.Fatal(err)
	}
	if opt.Feasible {
		fmt.Println()
		chart := &ftes.GanttChart{
			App:      inst.App,
			Arch:     opt.Arch,
			Mapping:  opt.Mapping,
			Schedule: opt.Schedule,
			Deadline: cc.Deadline,
			Width:    100,
		}
		if err := chart.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
