// Quickstart: define a small application and a platform with hardened
// node versions, run the design optimization, and print the chosen
// implementation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/ftes"
)

func main() {
	// A four-process diamond: Sense feeds Plan and Monitor, both feed
	// Act. Deadline 400 ms, recovery overhead μ = 10 ms per process.
	b := ftes.NewBuilder("quickstart")
	b.Graph("control-loop", 400)
	sense := b.Process("Sense", 10)
	plan := b.Process("Plan", 10)
	monitor := b.Process("Monitor", 10)
	act := b.Process("Act", 10)
	b.Edge("m1", sense, plan, 8)
	b.Edge("m2", sense, monitor, 8)
	b.Edge("m3", plan, act, 8)
	b.Edge("m4", monitor, act, 8)
	b.Period(400)
	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Two node types, each in three hardened versions. Hardening improves
	// the failure probability by two orders of magnitude per level, slows
	// the node down, and costs more — the trade-off the optimizer works.
	wcet := func(scale float64) []float64 {
		return []float64{50 * scale, 70 * scale, 40 * scale, 60 * scale}
	}
	probs := func(p float64) []float64 { return []float64{p, p, p, p} }
	mkNode := func(id int, name string, base float64, cost float64) ftes.Node {
		return ftes.Node{
			ID:   ftes.NodeID(id),
			Name: name,
			Versions: []ftes.HVersion{
				{Level: 1, Cost: cost, WCET: wcet(base), FailProb: probs(2e-3)},
				{Level: 2, Cost: 2 * cost, WCET: wcet(base * 1.15), FailProb: probs(2e-5)},
				{Level: 3, Cost: 4 * cost, WCET: wcet(base * 1.4), FailProb: probs(2e-7)},
			},
		}
	}
	pl := &ftes.Platform{
		Nodes: []ftes.Node{mkNode(0, "N1", 1.0, 12), mkNode(1, "N2", 1.1, 9)},
		Bus:   ftes.BusSpec{SlotLen: 2},
	}

	// Find the cheapest implementation meeting ρ = 1 − 10⁻⁵ per hour.
	res, err := ftes.Run(app, pl, ftes.Options{
		Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour},
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Feasible {
		log.Fatal("no feasible implementation")
	}

	fmt.Printf("cheapest implementation: %s\n", res.Arch)
	for j, node := range res.Arch.Nodes {
		fmt.Printf("  %s at hardening level %d with k=%d re-executions\n",
			node.Name, res.Arch.Levels[j], res.Ks[j])
	}
	for pid, j := range res.Mapping {
		fmt.Printf("  %-8s -> %s  [%.0f, %.0f] ms (worst-case completion %.0f ms)\n",
			app.Procs[pid].Name, res.Arch.Nodes[j].Name,
			res.Schedule.Start[pid], res.Schedule.Finish[pid], res.Schedule.WorstFinish[pid])
	}
	fmt.Printf("worst-case schedule length %.0f ms against deadline %.0f ms\n",
		res.Schedule.Length, app.Graphs[0].Deadline)
}
