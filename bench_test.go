package repro_test

import (
	"context"
	"testing"

	"repro/internal/cc"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/evalengine"
	"repro/internal/execsim"
	"repro/internal/experiments"
	"repro/internal/faultsim"
	"repro/internal/mapping"
	"repro/internal/paper"
	"repro/internal/platform"
	"repro/internal/policyopt"
	"repro/internal/prob"
	"repro/internal/redundancy"
	"repro/internal/replication"
	"repro/internal/sched"
	"repro/internal/sfp"
	"repro/internal/taskgen"
	"repro/internal/ttp"
	"repro/internal/wcetan"
)

// ---------------------------------------------------------------------
// Experiment E1/E3 — the paper's motivational examples (Figs. 1, 3, 4).
// ---------------------------------------------------------------------

// BenchmarkFig3 runs the full design strategy on the Fig. 3 example
// (experiment E3): the result must be the middle h-version at cost 20.
func BenchmarkFig3(b *testing.B) {
	app := paper.Fig3Application()
	pl := paper.Fig3Platform()
	opts := core.Options{Goal: sfp.Goal{Gamma: paper.Fig3Gamma, Tau: paper.Hour}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(app, pl, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible || res.Cost != 20 {
			b.Fatalf("unexpected result: feasible=%v cost=%v", res.Feasible, res.Cost)
		}
	}
}

// BenchmarkFig4Alternatives evaluates the five architecture alternatives
// of Fig. 4 through RedundancyOpt (experiment E1).
func BenchmarkFig4Alternatives(b *testing.B) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	alternatives := []struct {
		nodes   []int
		mapping []int
	}{
		{[]int{0, 1}, []int{0, 0, 1, 1}}, // (a)
		{[]int{0}, []int{0, 0, 0, 0}},    // (b,d)
		{[]int{1}, []int{0, 0, 0, 0}},    // (c,e)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, alt := range alternatives {
			// Build the architecture fresh each iteration.
			archNodes := collect(pl, alt.nodes)
			p := redundancy.Problem{
				App:     app,
				Arch:    newArch(archNodes),
				Mapping: alt.mapping,
				Goal:    goal,
				Bus:     ttp.NewBus(len(archNodes), pl.Bus.SlotLen),
			}
			if _, err := redundancy.RedundancyOpt(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------
// Experiment E4 — Appendix A.2 SFP computation.
// ---------------------------------------------------------------------

// BenchmarkAppendixA2 measures the SFP analysis on the Appendix A.2
// configuration, asserting the digit-exact reliability.
func BenchmarkAppendixA2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := sfp.NewAnalysis([][]float64{{1.2e-5, 1.3e-5}, {1.2e-5, 1.3e-5}}, 360, 4)
		if err != nil {
			b.Fatal(err)
		}
		if rel := a.SystemReliability([]int{1, 1}, paper.Hour); rel != 0.99999040004 {
			b.Fatalf("reliability %.11f", rel)
		}
	}
}

// BenchmarkSFPNode measures the per-node analysis setup for a 20-process
// node at the default re-execution cap.
func BenchmarkSFPNode(b *testing.B) {
	probs := make([]float64, 20)
	for i := range probs {
		probs[i] = 1e-5 + float64(i)*1e-6
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sfp.NewNode(probs, sfp.DefaultMaxK); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompleteHomogeneous measures the f-fault scenario DP.
func BenchmarkCompleteHomogeneous(b *testing.B) {
	probs := make([]float64, 40)
	for i := range probs {
		probs[i] = 1e-4
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prob.CompleteHomogeneous(probs, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Experiments E5–E8 — the Fig. 6 acceptance sweeps (one representative
// point each; cmd/paperbench regenerates the full figures).
// ---------------------------------------------------------------------

func benchPoint(b *testing.B, pt experiments.Point) {
	b.Helper()
	cfg := experiments.Config{Apps: 2, Procs: []int{20}, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Acceptance(context.Background(), cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6a measures the HPD-sweep point HPD=25% (E5).
func BenchmarkFig6a(b *testing.B) { benchPoint(b, experiments.Point{SER: 1e-11, HPD: 25, ArC: 20}) }

// BenchmarkFig6aParallel is the same point with four in-run workers; the
// per-app results are identical to BenchmarkFig6a, only the wall time
// differs.
func BenchmarkFig6aParallel(b *testing.B) {
	cfg := experiments.Config{Apps: 2, Procs: []int{20}, Seed: 1, RunWorkers: 4}
	pt := experiments.Point{SER: 1e-11, HPD: 25, ArC: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Acceptance(context.Background(), cfg, pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6b measures the ArC=15 row point (E6).
func BenchmarkFig6b(b *testing.B) { benchPoint(b, experiments.Point{SER: 1e-11, HPD: 25, ArC: 15}) }

// BenchmarkFig6c measures the SER=1e-12 point at HPD=5% (E7).
func BenchmarkFig6c(b *testing.B) { benchPoint(b, experiments.Point{SER: 1e-12, HPD: 5, ArC: 20}) }

// BenchmarkFig6d measures the SER=1e-10 point at HPD=100% (E8).
func BenchmarkFig6d(b *testing.B) { benchPoint(b, experiments.Point{SER: 1e-10, HPD: 100, ArC: 20}) }

// ---------------------------------------------------------------------
// Experiment E9 — the cruise-controller case study.
// ---------------------------------------------------------------------

// BenchmarkCruiseController runs OPT on the CC and asserts the paper's
// qualitative outcome.
func BenchmarkCruiseController(b *testing.B) {
	inst, err := cc.Instance()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(inst.App, inst.Platform, core.Options{Goal: inst.Goal, Strategy: core.OPT})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("CC should be feasible under OPT")
		}
	}
}

// BenchmarkCruiseControllerParallel runs the same OPT design with four
// in-run workers — candidate architectures probed concurrently and the
// tabu neighborhood fanned out. The result is identical to the
// sequential run.
func BenchmarkCruiseControllerParallel(b *testing.B) {
	inst, err := cc.Instance()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(inst.App, inst.Platform, core.Options{
			Goal: inst.Goal, Strategy: core.OPT, Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("CC should be feasible under OPT")
		}
	}
}

// ---------------------------------------------------------------------
// Experiment E10 — ablations.
// ---------------------------------------------------------------------

// BenchmarkAblationSlackShared and ...PerProcess compare the two recovery
// slack accountings on a full OPT run of a synthetic instance.
func BenchmarkAblationSlackShared(b *testing.B)     { benchSlack(b, sched.SlackShared) }
func BenchmarkAblationSlackPerProcess(b *testing.B) { benchSlack(b, sched.SlackPerProcess) }

func benchSlack(b *testing.B, model sched.SlackModel) {
	b.Helper()
	inst, err := taskgen.Generate(taskgen.DefaultConfig(7, 20, 1e-10, 25))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(inst.App, inst.Platform, core.Options{
			Goal: inst.Goal, Strategy: core.OPT, Model: model, MaxCost: 20,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGradient measures the gradient-guided re-execution
// assignment study.
func BenchmarkAblationGradient(b *testing.B) {
	cfg := experiments.Config{Apps: 2, Procs: []int{20}, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGradient(context.Background(), cfg, 1e-10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Experiment E11 — Monte-Carlo validation of the SFP analysis.
// ---------------------------------------------------------------------

// BenchmarkMonteCarloValidation measures a 100k-iteration fault-injection
// campaign.
func BenchmarkMonteCarloValidation(b *testing.B) {
	c := faultsim.Campaign{
		NodeProbs:  [][]float64{{0.02, 0.03}, {0.04}},
		Ks:         []int{1, 1},
		Iterations: 100000,
		Seed:       1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Component micro-benchmarks.
// ---------------------------------------------------------------------

// BenchmarkScheduleBuild measures list scheduling of a 40-process
// application on a 4-node architecture.
func BenchmarkScheduleBuild(b *testing.B) {
	inst, err := taskgen.Generate(taskgen.DefaultConfig(5, 40, 1e-11, 25))
	if err != nil {
		b.Fatal(err)
	}
	archNodes := collect(inst.Platform, []int{0, 1, 2, 3})
	ar := newArch(archNodes)
	m := make([]int, 40)
	for i := range m {
		m[i] = i % 4
	}
	in := sched.Input{
		App:     inst.App,
		Arch:    ar,
		Mapping: m,
		Ks:      []int{2, 2, 2, 2},
		Bus:     ttp.NewBus(4, inst.Platform.Bus.SlotLen),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Build(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMappingOptimize measures a full tabu-search run on a 20-process
// application over 2 nodes.
func BenchmarkMappingOptimize(b *testing.B) {
	inst, err := taskgen.Generate(taskgen.DefaultConfig(6, 20, 1e-11, 25))
	if err != nil {
		b.Fatal(err)
	}
	archNodes := collect(inst.Platform, []int{0, 1})
	p := redundancy.Problem{
		App:  inst.App,
		Arch: newArch(archNodes),
		Goal: inst.Goal,
		Bus:  ttp.NewBus(2, inst.Platform.Bus.SlotLen),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh evaluator per iteration measures the cold-start cost the
		// design strategy pays per run, not a warm-cache replay.
		ev := evalengine.New(p)
		if _, err := mapping.Optimize(ev, nil, mapping.ArchitectureCost, mapping.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

// collect returns pointers to the platform nodes with the given indices.
func collect(pl *platform.Platform, idx []int) []*platform.Node {
	out := make([]*platform.Node, len(idx))
	for i, j := range idx {
		out[i] = &pl.Nodes[j]
	}
	return out
}

// newArch wraps platform.NewArchitecture for brevity.
func newArch(nodes []*platform.Node) *platform.Architecture {
	return platform.NewArchitecture(nodes)
}

// BenchmarkTTPBus measures slot booking throughput.
func BenchmarkTTPBus(b *testing.B) {
	bus := ttp.NewBus(4, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			bus.Reset()
		}
		bus.Schedule(i%4, float64(i%7))
	}
}

// ---------------------------------------------------------------------
// Experiments E12/E13 — checkpointing and replication extensions.
// ---------------------------------------------------------------------

// BenchmarkCheckpointEvaluate measures the checkpointed evaluation of the
// Fig. 4a configuration (experiment E12).
func BenchmarkCheckpointEvaluate(b *testing.B) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ar := newArch(collect(pl, []int{0, 1}))
		ar.Levels = []int{2, 2}
		sol, err := checkpoint.Evaluate(app, ar, []int{0, 0, 1, 1}, goal,
			checkpoint.Overheads{Chi: 1, Alpha: 1}, ttp.NewBus(2, pl.Bus.SlotLen), 8)
		if err != nil {
			b.Fatal(err)
		}
		if !sol.Feasible() {
			b.Fatal("checkpointing should be feasible on Fig. 4a")
		}
	}
}

// BenchmarkReplicationEvaluate measures the replication evaluation with
// one replicated process (experiment E13).
func BenchmarkReplicationEvaluate(b *testing.B) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	goal := sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ar := newArch(collect(pl, []int{0, 1}))
		ar.Levels = []int{2, 2}
		_, err := replication.Evaluate(replication.Problem{
			App: app, Arch: ar, Mapping: []int{0, 0, 1, 1},
			Replicas: replication.Assignment{1: {0, 1}},
			Goal:     goal,
			Bus:      ttp.NewBus(2, pl.Bus.SlotLen),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyComparison measures the three-policy study on a small
// batch.
func BenchmarkPolicyComparison(b *testing.B) {
	cfg := experiments.Config{Apps: 2, Procs: []int{20}, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PolicyComparison(context.Background(), cfg, 1e-10, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWCETAnalysis measures the structured-program WCET analysis.
func BenchmarkWCETAnalysis(b *testing.B) {
	prog := wcetan.Program{Name: "p", Root: wcetan.Seq{
		wcetan.Block{N: 1000},
		wcetan.Loop{Bound: 100, TestCycles: 5, Body: wcetan.Seq{
			wcetan.Block{N: 200},
			wcetan.Branch{TestCycles: 10, Alternatives: []wcetan.Node{
				wcetan.Block{N: 500}, wcetan.Block{N: 100},
			}},
		}},
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prog.WCETCycles(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPolicyOptimize measures the greedy policy-assignment search on
// the Fig. 4a configuration.
func BenchmarkPolicyOptimize(b *testing.B) {
	pl := paper.Fig1Platform()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ar := newArch(collect(pl, []int{0, 1}))
		ar.Levels = []int{2, 2}
		_, err := policyopt.Optimize(policyopt.Problem{
			App:       paper.Fig1Application(),
			Arch:      ar,
			Mapping:   []int{0, 0, 1, 1},
			Goal:      sfp.Goal{Gamma: paper.Fig1Gamma, Tau: paper.Hour},
			Overheads: checkpoint.Overheads{Chi: 1, Alpha: 1},
			Bus:       ttp.NewBus(2, pl.Bus.SlotLen),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecSim measures one simulated iteration of the Fig. 4a
// system.
func BenchmarkExecSim(b *testing.B) {
	app := paper.Fig1Application()
	pl := paper.Fig1Platform()
	ar := newArch(collect(pl, []int{0, 1}))
	ar.Levels = []int{2, 2}
	mapping := []int{0, 0, 1, 1}
	static, err := sched.Build(sched.Input{
		App: app, Arch: ar, Mapping: mapping, Ks: []int{1, 1},
		Bus: ttp.NewBus(2, pl.Bus.SlotLen),
	})
	if err != nil {
		b.Fatal(err)
	}
	in := execsim.Input{
		App: app, Arch: ar, Mapping: mapping, Ks: []int{1, 1},
		Bus: ttp.NewBus(2, pl.Bus.SlotLen), Static: static,
		Faults: []int{0, 1, 0, 1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := execsim.Run(in); err != nil {
			b.Fatal(err)
		}
	}
}
