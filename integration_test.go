package repro_test

import (
	"bytes"
	"os"
	"os/exec"
	"testing"

	"repro/ftes"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/execsim"
	"repro/internal/paper"
	"repro/internal/specio"
	"repro/internal/tgff"
	"repro/internal/ttp"
)

// TestEndToEndSpecRoundTrip drives the full tool pipeline in-process:
// paper fixture → JSON spec → decode → design optimization → execution
// simulation of the chosen design.
func TestEndToEndSpecRoundTrip(t *testing.T) {
	spec := &specio.Spec{
		Application: paper.Fig1Application(),
		Platform:    paper.Fig1Platform(),
		Gamma:       paper.Fig1Gamma,
	}
	var buf bytes.Buffer
	if err := specio.Write(&buf, spec); err != nil {
		t.Fatal(err)
	}
	decoded, err := specio.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(decoded.Application, decoded.Platform, core.Options{Goal: decoded.Goal()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || res.Cost > 72 {
		t.Fatalf("optimization: feasible=%v cost=%v", res.Feasible, res.Cost)
	}
	campaign := execsim.Campaign{
		Input: execsim.Input{
			App:     decoded.Application,
			Arch:    res.Arch,
			Mapping: res.Mapping,
			Ks:      res.Ks,
			Bus:     ttp.NewBus(len(res.Arch.Nodes), decoded.Platform.Bus.SlotLen),
			Static:  res.Schedule,
		},
		Iterations: 200,
		Seed:       1,
	}
	cr, err := campaign.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With p ≈ 1e-3..1e-5 realistic faults, the design essentially never
	// misses over 200 iterations.
	if cr.DeadlineMisses > 5 {
		t.Errorf("%d misses over %d probabilistic iterations", cr.DeadlineMisses, cr.Iterations)
	}
}

// TestEndToEndTGFFPipeline: TGFF text → application → architecture built
// by the WCET substrate → design run through the public facade.
func TestEndToEndTGFFPipeline(t *testing.T) {
	const doc = `
@TASK_GRAPH 0 {
	PERIOD 200
	TASK read  TYPE 0
	TASK plan  TYPE 1
	TASK act   TYPE 2
	ARC a0 FROM read TO plan TYPE 0
	ARC a1 FROM plan TO act  TYPE 1
	HARD_DEADLINE d0 ON act AT 180
}
`
	f, err := tgff.Parse(bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	app, err := f.Application("tgff-flow", tgff.Options{
		Mu: func(int) float64 { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	node, err := ftes.BuildWCETNode(ftes.WCETNodeSpec{
		ID: 0, Name: "ECU", ClockMHz: 200, BaseCost: 5, Levels: 3,
		HPDPercent: 25, SERPerCycle: 1e-10,
	}, []ftes.WCETProgram{
		{Name: "read", Root: ftes.WCETBlock{N: 2_000_000}},
		{Name: "plan", Root: ftes.WCETLoop{Bound: 10, TestCycles: 100, Body: ftes.WCETBlock{N: 400_000}}},
		{Name: "act", Root: ftes.WCETBlock{N: 1_500_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pl := &ftes.Platform{Nodes: []ftes.Node{*node}, Bus: ftes.BusSpec{SlotLen: 0.5}}
	res, err := ftes.Run(app, pl, ftes.Options{Goal: ftes.Goal{Gamma: 1e-5, Tau: ftes.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("TGFF pipeline should produce a feasible design (result %+v)", res)
	}
}

// TestEndToEndCCPolicyUpgrade: the cruise controller's OPT design, then
// per-process policy assignment on top — the policy optimizer must not
// make the schedule worse.
func TestEndToEndCCPolicyUpgrade(t *testing.T) {
	inst, err := cc.Instance()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(inst.App, inst.Platform, core.Options{Goal: inst.Goal, Strategy: core.OPT})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("CC OPT should be feasible")
	}
	sol, err := ftes.OptimizePolicies(ftes.PolicyProblem{
		App:       inst.App,
		Arch:      res.Arch,
		Mapping:   res.Mapping,
		Goal:      inst.Goal,
		Overheads: ftes.CheckpointOverheads{Chi: 0.5, Alpha: 0.5},
		Bus:       ttp.NewBus(len(res.Arch.Nodes), inst.Platform.Bus.SlotLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible() {
		t.Fatal("policy assignment should remain feasible")
	}
	if sol.Schedule.Length > res.Schedule.Length+1e-9 {
		t.Errorf("policy assignment worsened the CC schedule: %v vs %v",
			sol.Schedule.Length, res.Schedule.Length)
	}
}

// TestExamplesRun executes every example main and requires a clean exit —
// the examples are living documentation and must not rot.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns the go toolchain")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
